package controller

import (
	"fmt"
	"sort"
	"time"

	"lass/internal/cluster"
	"lass/internal/fairshare"
	"lass/internal/functions"
	"lass/internal/queuing"
)

// ReclamationPolicy selects how resources are taken back from
// over-allocated functions during overload (§4.2).
type ReclamationPolicy int

const (
	// DefaultPolicy defers to the paper default (Deflation, see Default).
	// It is deliberately the zero value so a partially-specified Config
	// runs the documented defaults instead of silently selecting
	// Termination; opting into Termination requires naming it.
	DefaultPolicy ReclamationPolicy = iota
	// Termination shuts down whole containers to free capacity.
	Termination
	// Deflation shrinks containers' CPU in place, terminating only when
	// maximum deflation is still insufficient.
	Deflation
)

// String returns the policy name.
func (p ReclamationPolicy) String() string {
	switch p {
	case DefaultPolicy:
		return "default(deflation)"
	case Termination:
		return "termination"
	case Deflation:
		return "deflation"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config holds the controller's tunables. Zero values are replaced by the
// paper's defaults (see Default).
type Config struct {
	// SLO is the default latency objective for registered functions:
	// §6.1 uses "95th of waiting time should be under 100 ms".
	SLO queuing.SLO
	// EvalInterval is how often the allocation step runs; §5 evaluates
	// the windows every 5 seconds.
	EvalInterval time.Duration
	// EWMAAlpha is the weight of the newest epoch in the rate EWMA.
	EWMAAlpha float64
	// Windows configures the dual sliding-window estimator.
	Windows DualWindowConfig
	// DeflationThreshold is τ, the maximum fraction of a container's CPU
	// that deflation may reclaim (§4.2 sets it "conservatively (e.g.,
	// τ = 30%)").
	DeflationThreshold float64
	// DeflationIncrement is the per-iteration deflation step as a
	// fraction of the standard size ("in small increments").
	DeflationIncrement float64
	// Policy selects the overload reclamation policy.
	Policy ReclamationPolicy
	// MinContainers keeps at least this many containers per function
	// even when the model wants fewer.
	MinContainers int
	// DrainTTL is how long an over-provisioned container stays in the
	// lazily-reclaimed Draining state before being terminated outright.
	DrainTTL time.Duration
	// UncappedFairShare disables the water-filling refinement that never
	// hands an overloaded function more than its model-computed desire
	// (see fairshare.AdjustCapped). The zero value is the paper default
	// (capped, §4.1), so partial Configs keep the documented behaviour;
	// uncapped shares are an explicit opt-in.
	UncappedFairShare bool
	// UseLearnedRates makes the model consume the online service-time
	// learner's μ estimates instead of the registered spec (§5's online
	// learning mode) once enough observations exist.
	UseLearnedRates bool
	// NoInflateOnSlack disables restoring deflated containers to their
	// standard size when resource pressure ends. The Fig 4 model
	// -validation experiment needs manually deflated containers to stay
	// deflated so the heterogeneous model's reaction can be measured.
	NoInflateOnSlack bool
	// NoBurstDetection ignores the short-window burst signal and always
	// uses the EWMA-smoothed long-window rate — the estimator ablation.
	NoBurstDetection bool
	// OfferedLoadDemand makes the ingress feed *offered* load — including
	// requests a federation placement layer sheds to peers or the cloud —
	// into this controller's arrival-rate estimator even under
	// per-site-local allocation. Without it the estimator sees only kept
	// arrivals, so a steadily-shedding origin's overload signal
	// oscillates: shed load vanishes from the arrival stream, headroom
	// recovers, shedding stops, and the overload returns. The federation
	// layer reads this knob at its offload hook (the global fair-share
	// allocator always accounts offered load, knob or not); standalone
	// single-cluster platforms have no shedding path, so they are
	// unaffected.
	OfferedLoadDemand bool
}

// Default returns the paper-faithful configuration.
func Default() Config {
	return Config{
		SLO:                queuing.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true},
		EvalInterval:       5 * time.Second,
		EWMAAlpha:          0.6,
		Windows:            DefaultDualWindow(),
		DeflationThreshold: 0.30,
		DeflationIncrement: 0.05,
		Policy:             Deflation,
		MinContainers:      0,
		DrainTTL:           60 * time.Second,
		UncappedFairShare:  false, // capped water-filling (§4.1)
	}
}

func (c *Config) fillDefaults() {
	d := Default()
	if c.SLO.Deadline == 0 {
		c.SLO = d.SLO
	}
	if c.EvalInterval == 0 {
		c.EvalInterval = d.EvalInterval
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = d.EWMAAlpha
	}
	if c.Windows.Short == 0 {
		c.Windows = d.Windows
	}
	if c.DeflationThreshold == 0 {
		c.DeflationThreshold = d.DeflationThreshold
	}
	if c.DeflationIncrement == 0 {
		c.DeflationIncrement = d.DeflationIncrement
	}
	if c.DrainTTL == 0 {
		c.DrainTTL = d.DrainTTL
	}
	if c.Policy == DefaultPolicy {
		c.Policy = d.Policy
	}
}

// Hooks connect the controller to its host (the simulated platform or the
// real-time runtime). The controller mutates the cluster directly; hooks
// tell the host when containers become usable or disappear so the data
// path can attach/detach them.
type Hooks struct {
	// Now returns the current time.
	Now func() time.Duration
	// ScheduleColdStart arranges for ready() to run after the
	// container's cold-start delay.
	ScheduleColdStart func(c *cluster.Container, delay time.Duration, ready func())
	// OnReady fires when a container finished cold-starting (it is
	// already marked Running).
	OnReady func(c *cluster.Container)
	// OnRemove fires when a container is terminated; the host must
	// detach it from the data path (requeueing any in-flight request).
	OnRemove func(c *cluster.Container)
	// OnResize fires after a container's CPU allocation changed.
	OnResize func(c *cluster.Container)
}

func (h Hooks) validate() error {
	if h.Now == nil || h.ScheduleColdStart == nil || h.OnReady == nil || h.OnRemove == nil {
		return fmt.Errorf("controller: Now, ScheduleColdStart, OnReady and OnRemove hooks are required")
	}
	return nil
}

// Function is the controller's per-function state.
type Function struct {
	Spec   functions.Spec
	SLO    queuing.SLO
	Weight float64
	User   string // namespace for two-level hierarchical shares ("" = flat)

	estimator *DualWindow
	smoother  *EWMA
	learner   *functions.Learner
	predictor Predictor

	// LambdaHat is the rate estimate used by the most recent Step.
	LambdaHat float64
	// Desired is the model-computed container count c_new from the most
	// recent Step.
	Desired int
	// Burst reports whether the most recent estimate came from the
	// short window.
	Burst bool

	// sizeHint and hetHint warm-start the next epoch's container-count
	// scans from this epoch's answers (queuing.MinimalContainersFrom /
	// AdditionalHetContainersFrom). The sized result is identical for any
	// hint — only the number of candidates the scan touches changes — so
	// the hints never need invalidation, even across service-rate or
	// demand swings.
	sizeHint int
	hetHint  int
}

// Learner exposes the function's online service-time learner so the host
// can feed completions into it.
func (f *Function) Learner() *functions.Learner { return f.learner }

// Stats are the controller's cumulative action counters.
type Stats struct {
	Creations    uint64
	Terminations uint64
	Deflations   uint64
	Inflations   uint64
	Revivals     uint64
	Drains       uint64
	Overloads    uint64 // Steps that ran the fair-share path
	Steps        uint64
	// GrantLeaseExpiries counts grant leases that lapsed without renewal,
	// each dropping the controller back to local enforcement.
	GrantLeaseExpiries uint64
}

// Controller is the LaSS control plane for one edge cluster.
type Controller struct {
	cfg      Config
	cluster  *cluster.Cluster
	hooks    Hooks
	funcs    map[string]*Function
	order    []string // registration order, for deterministic iteration
	users    map[string]float64
	drained  map[cluster.ContainerID]time.Duration // when marked draining
	stats    Stats
	headroom int64            // capacity minus model-desired CPU, from the last Step
	grants   map[string]int64 // externally-imposed CPU grants (nil = local allocation)
	// grantDeadline is when the current grant lease lapses (0 = no lease:
	// grants stay valid until explicitly replaced or cleared).
	grantDeadline time.Duration
	// liveScratch/drainScratch back liveContainers and drainingContainers.
	// They are separate because reconcileNormal holds a live slice while it
	// fetches the draining one; no caller holds two results of the SAME
	// helper across a second call to it.
	liveScratch  []*cluster.Container
	drainScratch []*cluster.Container
	// Per-epoch scratch: estimate, Demands, desiredContainers and
	// grantTargets return views of these buffers so a steady-state control
	// epoch performs no heap allocations. Each helper's result is valid
	// only until its next call on this controller.
	demandScratch []fairshare.Demand
	demandsOut    []FunctionDemand
	rateScratch   []float64
	targetScratch map[string]int64
	feasScratch   []fairshare.Demand
}

// New builds a controller for the cluster.
func New(cfg Config, cl *cluster.Cluster, hooks Hooks) (*Controller, error) {
	if cl == nil {
		return nil, fmt.Errorf("controller: nil cluster")
	}
	if err := hooks.validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if cfg.DeflationThreshold < 0 || cfg.DeflationThreshold >= 1 {
		return nil, fmt.Errorf("controller: deflation threshold %v out of [0,1)", cfg.DeflationThreshold)
	}
	if cfg.DeflationIncrement <= 0 || cfg.DeflationIncrement > 1 {
		return nil, fmt.Errorf("controller: deflation increment %v out of (0,1]", cfg.DeflationIncrement)
	}
	return &Controller{
		cfg:           cfg,
		cluster:       cl,
		hooks:         hooks,
		funcs:         make(map[string]*Function),
		users:         make(map[string]float64),
		drained:       make(map[cluster.ContainerID]time.Duration),
		headroom:      cl.TotalCPU(), // optimistic until the first Step runs
		targetScratch: make(map[string]int64),
	}, nil
}

// Config returns the controller's effective configuration.
func (ctl *Controller) Config() Config { return ctl.cfg }

// Stats returns the cumulative action counters.
func (ctl *Controller) Stats() Stats { return ctl.stats }

// Headroom is the controller's capacity-headroom signal: cluster CPU
// (millicores) left over after the queuing model's desired allocations, as
// of the most recent Step. Negative values mean the last epoch ran
// overloaded (the fair-share path was taken). Before the first Step it is
// the full cluster capacity. The federation placement layer reads this to
// decide whether a site can absorb more load or should shed it.
func (ctl *Controller) Headroom() int64 { return ctl.headroom }

// Overloaded reports whether the most recent Step found aggregate demand
// exceeding cluster capacity.
func (ctl *Controller) Overloaded() bool { return ctl.headroom < 0 }

// RegisterUser sets a namespace weight for the two-level hierarchical
// share tree (§5). Functions registered with this user name share the
// user's cluster fraction.
func (ctl *Controller) RegisterUser(name string, weight float64) error {
	if name == "" || weight <= 0 {
		return fmt.Errorf("controller: invalid user %q weight %v", name, weight)
	}
	ctl.users[name] = weight
	return nil
}

// Register adds a function to the platform. weight is its fair-share
// weight ω_i; user optionally names a namespace (RegisterUser). A zero SLO
// uses the controller default.
func (ctl *Controller) Register(spec functions.Spec, user string, weight float64, slo queuing.SLO) (*Function, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, dup := ctl.funcs[spec.Name]; dup {
		return nil, fmt.Errorf("controller: function %q already registered", spec.Name)
	}
	if weight <= 0 {
		weight = spec.Weight
	}
	if slo.Deadline == 0 {
		slo = ctl.cfg.SLO
	}
	if user != "" {
		if _, ok := ctl.users[user]; !ok {
			return nil, fmt.Errorf("controller: user %q not registered", user)
		}
	}
	est, err := NewDualWindow(ctl.cfg.Windows)
	if err != nil {
		return nil, err
	}
	sm, err := NewEWMA(ctl.cfg.EWMAAlpha)
	if err != nil {
		return nil, err
	}
	learner, err := functions.NewLearner(0.05)
	if err != nil {
		return nil, err
	}
	f := &Function{
		Spec:      spec,
		SLO:       slo,
		Weight:    weight,
		User:      user,
		estimator: est,
		smoother:  sm,
		learner:   learner,
	}
	ctl.funcs[spec.Name] = f
	ctl.order = append(ctl.order, spec.Name)
	return f, nil
}

// Function returns the registered function state.
func (ctl *Controller) Function(name string) (*Function, bool) {
	f, ok := ctl.funcs[name]
	return f, ok
}

// Functions returns registered function names in registration order.
func (ctl *Controller) Functions() []string {
	return append([]string(nil), ctl.order...)
}

// RecordArrival feeds the estimator; the data path calls it for every
// incoming request.
func (ctl *Controller) RecordArrival(function string) {
	if f, ok := ctl.funcs[function]; ok {
		f.estimator.RecordArrival(ctl.hooks.Now())
	}
}

// serviceRate returns the μ the model should use for fn's standard
// container: the learned estimate when configured and available, otherwise
// the spec.
func (ctl *Controller) serviceRate(f *Function) float64 {
	if ctl.cfg.UseLearnedRates {
		if mu, ok := f.learner.Rate(1.0); ok && f.learner.Observations() >= 20 {
			return mu
		}
	}
	return f.Spec.ServiceRate()
}

// liveContainers returns fn's containers that count toward its allocation
// (Starting or Running; Draining containers are spare capacity pending
// lazy reclaim).
// The result aliases a controller-owned scratch buffer: it is valid only
// until the next liveContainers call and must not be retained.
func (ctl *Controller) liveContainers(fn string) []*cluster.Container {
	buf := ctl.cluster.AppendContainersOf(fn, ctl.liveScratch[:0])
	ctl.liveScratch = buf
	out := buf[:0]
	for _, c := range buf {
		if c.State() == cluster.Starting || c.State() == cluster.Running {
			out = append(out, c)
		}
	}
	return out
}

// drainingContainers mirrors liveContainers for the Draining state, on its
// own scratch buffer (see the struct comment); the same retention rule
// applies.
func (ctl *Controller) drainingContainers(fn string) []*cluster.Container {
	buf := ctl.cluster.AppendContainersOf(fn, ctl.drainScratch[:0])
	ctl.drainScratch = buf
	out := buf[:0]
	for _, c := range buf {
		if c.State() == cluster.Draining {
			out = append(out, c)
		}
	}
	return out
}

// liveCPU sums the current CPU of fn's live containers.
func liveCPU(cs []*cluster.Container) int64 {
	var t int64
	for _, c := range cs {
		t += c.CPUCurrent
	}
	return t
}

// desiredContainers runs the queueing model for one function: Algorithm 1
// on the homogeneous model, switching to the Alves heterogeneous bound
// when the function's pool contains deflated containers (§3.2-§3.3).
func (ctl *Controller) desiredContainers(f *Function, lambda float64) (int, error) {
	mu := ctl.serviceRate(f)
	live := ctl.liveContainers(f.Spec.Name)
	heterogeneous := false
	for _, c := range live {
		if c.Deflated() {
			heterogeneous = true
			break
		}
	}
	if !heterogeneous {
		// Warm-started scan: seeded from the previous epoch's answer, so
		// slowly-drifting rates touch O(1) candidates. The result equals
		// the cold scan's for any seed.
		c, err := queuing.MinimalContainersFrom(lambda, mu, f.SLO, f.sizeHint)
		if err != nil {
			return 0, err
		}
		f.sizeHint = c
		if c < ctl.cfg.MinContainers {
			c = ctl.cfg.MinContainers
		}
		return c, nil
	}
	// Heterogeneous pool: how many standard containers would the pool
	// need on top of the deflated ones (Fig 4's reaction)? The desired
	// count never drops below what a fresh homogeneous pool would use, so
	// scale-down remains possible once pressure ends.
	rates := ctl.rateScratch[:0]
	for _, c := range live {
		rates = append(rates, f.Spec.RateAt(c.CPUFraction()))
	}
	ctl.rateScratch = rates
	add, err := queuing.AdditionalHetContainersFrom(lambda, rates, mu, f.SLO, f.hetHint)
	if err != nil {
		return 0, err
	}
	f.hetHint = add
	want := len(live) + add
	homog, err := queuing.MinimalContainersFrom(lambda, mu, f.SLO, f.sizeHint)
	if err != nil {
		return 0, err
	}
	f.sizeHint = homog
	if add == 0 && homog < want {
		// Pool already satisfies the SLO with room to spare: allow the
		// homogeneous target so over-provisioned deflated pools shrink.
		want = homog
	}
	if want < ctl.cfg.MinContainers {
		want = ctl.cfg.MinContainers
	}
	return want, nil
}

// FunctionDemand is one function's estimated capacity need for the next
// epoch, as reported to an external (federation-level) allocator: the
// inputs the §4.1 fair-share adjustment consumes, detached from the local
// enforcement that normally follows them.
type FunctionDemand struct {
	Name       string
	User       string  // namespace for hierarchical shares ("" = flat)
	Weight     float64 // function fair-share weight ω_i
	UserWeight float64 // weight of the User namespace (1 when flat)
	DesiredCPU int64   // model-computed desire in CPU millicores
}

// Demands returns the per-function demand estimates from the most recent
// Step (model-desired CPU, fair-share weight, namespace), in registration
// order. Every desire is floored at MinContainers' worth of CPU, and —
// until the first Step has produced a real estimate — at the function's
// current live pool CPU: a controller has no demand history at bootstrap,
// and an allocator reading it then (e.g. a global epoch firing at t≈0)
// must see the provisioned (prewarmed) capacity, not an artificial zero
// it would turn into a pool-killing zero grant. After the first Step both
// floors are no-ops for sizing-governed pools, so scale-down is
// unimpeded. The federation-level global allocator gathers these from
// every site's controller each epoch.
//
// The result aliases a controller-owned scratch buffer: it is valid only
// until the next Demands call and must not be retained. Callers that need
// the report later copy it (the federation's epoch snapshot does).
func (ctl *Controller) Demands() []FunctionDemand {
	out := ctl.demandsOut[:0]
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		uw := 1.0
		if f.User != "" {
			if w := ctl.users[f.User]; w > 0 {
				uw = w
			}
		}
		desired := int64(f.Desired) * f.Spec.CPUMillis
		if min := int64(ctl.cfg.MinContainers) * f.Spec.CPUMillis; desired < min {
			desired = min
		}
		if ctl.stats.Steps == 0 {
			if live := liveCPU(ctl.liveContainers(name)); desired < live {
				desired = live
			}
		}
		out = append(out, FunctionDemand{
			Name:       name,
			User:       f.User,
			Weight:     f.Weight,
			UserWeight: uw,
			DesiredCPU: desired,
		})
	}
	ctl.demandsOut = out
	return out
}

// Capacity returns the cluster's total CPU capacity in millicores.
func (ctl *Controller) Capacity() int64 { return ctl.cluster.TotalCPU() }

// SetCapacityGrants imposes externally-computed per-function CPU grants
// with no lease: they stay valid until replaced or cleared — the
// freeze-on-stale legacy behaviour. Subsequent Steps enforce each function
// toward its grant instead of computing shares from local cluster capacity
// (the federation-level global fair-share path). A function absent from
// the map keeps its model-computed desire; a nil map restores local
// allocation. The map is copied.
func (ctl *Controller) SetCapacityGrants(grants map[string]int64) {
	ctl.SetCapacityGrantsLeased(grants, 0)
}

// SetCapacityGrantsLeased imposes externally-computed per-function CPU
// grants valid for lease from now. When the lease lapses without a renewal
// (another SetCapacityGrants* call), the controller falls back to local
// enforcement instead of freezing on stale grants forever: the next Step —
// or an explicit ExpireGrantLease call, which the federation schedules on
// its shared engine at the expiry instant — drops the grants. A
// non-positive lease means no expiry (the SetCapacityGrants behaviour);
// a nil map restores local allocation immediately.
func (ctl *Controller) SetCapacityGrantsLeased(grants map[string]int64, lease time.Duration) {
	if grants == nil {
		ctl.grants = nil
		ctl.grantDeadline = 0
		return
	}
	g := make(map[string]int64, len(grants))
	for k, v := range grants {
		g[k] = v
	}
	ctl.grants = g
	if lease > 0 {
		ctl.grantDeadline = ctl.hooks.Now() + lease
	} else {
		ctl.grantDeadline = 0
	}
}

// ExpireGrantLease drops the externally-imposed grants if their lease has
// lapsed, restoring local enforcement, and reports whether it did. A
// controller with no grants, no lease, or an unexpired lease is untouched.
// The federation calls this from an engine event at the lease deadline so
// the fallback is visible to the placement layer the instant the lease
// runs out; Step also checks, so standalone hosts need no extra wiring.
func (ctl *Controller) ExpireGrantLease() bool {
	if ctl.grants == nil || ctl.grantDeadline == 0 || ctl.hooks.Now() < ctl.grantDeadline {
		return false
	}
	ctl.grants = nil
	ctl.grantDeadline = 0
	ctl.stats.GrantLeaseExpiries++
	return true
}

// GrantedExternally reports whether an external allocator currently
// governs this controller's capacity enforcement.
func (ctl *Controller) GrantedExternally() bool { return ctl.grants != nil }

// Granted returns the externally-imposed CPU grant (millicores) for one
// function and whether such a grant exists. The federation's placement
// context exposes this per candidate site, so allocator-aware policies can
// credit granted-but-not-yet-materialized capacity.
func (ctl *Controller) Granted(fn string) (int64, bool) {
	if ctl.grants == nil {
		return 0, false
	}
	g, ok := ctl.grants[fn]
	return g, ok
}

// Step runs one allocation epoch (§3.3): estimate rates, compute desired
// capacity per function, then enforce — against the local cluster capacity
// via the §4.1 fair-share adjustment, or, when an external allocator has
// imposed grants (SetCapacityGrants), against those grants.
func (ctl *Controller) Step() error {
	demands, err := ctl.estimate()
	if err != nil {
		return err
	}
	ctl.ExpireGrantLease()
	if ctl.grants != nil {
		return ctl.enforceGrants(demands)
	}
	return ctl.enforceLocal(demands)
}

// estimate runs the demand-estimation half of an epoch: per-function rate
// estimates and model-driven desired capacity, with no enforcement. The
// returned slice aliases a controller-owned scratch buffer, valid only
// until the next estimate call — Step's enforcement consumes it before the
// epoch ends, so a steady-state epoch allocates nothing here.
func (ctl *Controller) estimate() ([]fairshare.Demand, error) {
	now := ctl.hooks.Now()
	ctl.stats.Steps++

	// 1. Rate estimates.
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		raw, burst := f.estimator.Rate(now)
		if ctl.cfg.NoBurstDetection {
			burst = false
		}
		f.Burst = burst
		switch {
		case burst:
			// React to the burst immediately (§5): bypass smoothing but
			// keep the smoother current.
			f.smoother.Update(raw)
			f.LambdaHat = raw
		case raw == 0:
			// The entire long window is silent: the function is idle.
			// Snap the EWMA to zero rather than decaying geometrically,
			// so idle functions release their capacity.
			f.smoother.Reset()
			f.LambdaHat = f.smoother.Update(0)
		default:
			f.LambdaHat = f.smoother.Update(raw)
		}
		// Optional load prediction (§5): provision for where the load
		// will be next epoch, not where it was.
		if f.predictor != nil {
			f.predictor.Observe(now, f.LambdaHat)
			f.LambdaHat = f.predictor.Predict(now, ctl.cfg.EvalInterval)
		}
	}

	// 2. Model-driven desired capacity.
	demands := ctl.demandScratch[:0]
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		want, err := ctl.desiredContainers(f, f.LambdaHat)
		if err != nil {
			return nil, fmt.Errorf("controller: sizing %s: %w", name, err)
		}
		f.Desired = want
		demands = append(demands, fairshare.Demand{
			ID:      name,
			Weight:  f.Weight,
			Desired: int64(want) * f.Spec.CPUMillis,
		})
	}
	ctl.demandScratch = demands
	return demands, nil
}

// enforceLocal is the paper's enforcement path: detect overload against
// the local cluster capacity, adjust via fair share, and reconcile each
// function's pool using the configured reclamation policy.
func (ctl *Controller) enforceLocal(demands []fairshare.Demand) error {
	now := ctl.hooks.Now()
	var totalDesired int64
	for _, d := range demands {
		totalDesired += d.Desired
	}

	// 3. Expire lazily-drained containers past their TTL.
	ctl.expireDrained(now)

	capacity := ctl.cluster.TotalCPU()
	ctl.headroom = capacity - totalDesired
	if totalDesired <= capacity {
		// No resource pressure: grant everyone their desire (§3.3).
		for _, name := range ctl.order {
			f := ctl.funcs[name]
			if err := ctl.reconcileNormal(f, f.Desired); err != nil {
				return err
			}
		}
		return nil
	}

	// 4. Overload: weighted fair share (§4.1), hierarchical when users
	// are registered (§5), then policy-based reclamation (§4.2).
	ctl.stats.Overloads++
	grants, err := ctl.fairShares(demands, capacity)
	if err != nil {
		return err
	}
	// Reclaim first (free capacity), then grow into the freed space.
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		if err := ctl.shrinkTo(f, grants[name]); err != nil {
			return err
		}
	}
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		if err := ctl.growTo(f, grants[name]); err != nil {
			return err
		}
	}
	return nil
}

// grantTargets computes the per-function CPU targets the external-grant
// path enforces: each granted function's target is its grant (the model
// desire where no grant exists), floored at MinContainers' worth of CPU —
// an external allocator's snapshot is at least an epoch and a round trip
// stale, and may predate this site's first demand report entirely, so a
// stale or zero grant must not shrink a pool below the configured minimum.
// An infeasible target set (summing beyond cluster capacity) is scaled
// down by one local capped adjustment, so enforcement never tries to place
// more CPU than physically exists.
//
// The returned map aliases controller-owned scratch, valid only until the
// next grantTargets call (i.e. within the Step that requested it).
func (ctl *Controller) grantTargets(demands []fairshare.Demand, capacity int64) (map[string]int64, error) {
	clear(ctl.targetScratch)
	targets := ctl.targetScratch
	var totalTarget int64
	for _, d := range demands {
		t := d.Desired
		if g, ok := ctl.grants[d.ID]; ok {
			t = g
		}
		if t < 0 {
			t = 0
		}
		if f := ctl.funcs[d.ID]; f != nil {
			if min := int64(ctl.cfg.MinContainers) * f.Spec.CPUMillis; t < min {
				t = min
			}
		}
		targets[d.ID] = t
		totalTarget += t
	}
	if totalTarget > capacity {
		feasible := ctl.feasScratch[:0]
		for _, d := range demands {
			feasible = append(feasible, fairshare.Demand{ID: d.ID, Weight: d.Weight, Desired: targets[d.ID]})
		}
		ctl.feasScratch = feasible
		allocs, err := fairshare.AdjustCapped(feasible, capacity)
		if err != nil {
			return nil, err
		}
		for _, a := range allocs {
			targets[a.ID] = a.Adjusted
		}
	}
	return targets, nil
}

// enforceGrants reconciles every function toward its externally-imposed
// CPU grant instead of computing shares from local capacity: it computes
// the feasible per-function targets (grantTargets) and then reconciles
// each pool. A grant below the model desire is binding (overload
// semantics: immediate reclamation, then growth into the grant); a grant
// at or above the desire reconciles normally, growing past the model
// count when the grant pre-provisions capacity for offloaded work the
// global allocator expects to arrive.
func (ctl *Controller) enforceGrants(demands []fairshare.Demand) error {
	now := ctl.hooks.Now()
	var totalDesired int64
	for _, d := range demands {
		totalDesired += d.Desired
	}
	ctl.expireDrained(now)

	capacity := ctl.cluster.TotalCPU()
	ctl.headroom = capacity - totalDesired

	targets, err := ctl.grantTargets(demands, capacity)
	if err != nil {
		return err
	}
	bound := false
	for _, d := range demands {
		if targets[d.ID] < d.Desired {
			bound = true
			break
		}
	}
	if bound {
		ctl.stats.Overloads++
	}
	// Reclaim grant-bound pools first (freeing capacity), then grow.
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		if targets[name] < int64(f.Desired)*f.Spec.CPUMillis {
			if err := ctl.shrinkTo(f, targets[name]); err != nil {
				return err
			}
		}
	}
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		desired := int64(f.Desired) * f.Spec.CPUMillis
		if targets[name] < desired {
			if err := ctl.growTo(f, targets[name]); err != nil {
				return err
			}
			continue
		}
		want := f.Desired
		if w := int(targets[name] / f.Spec.CPUMillis); w > want {
			want = w // pre-provision toward the granted container count
		}
		if err := ctl.reconcileNormal(f, want); err != nil {
			return err
		}
	}
	return nil
}

// fairShares computes each function's adjusted CPU grant. With registered
// users it builds the two-level tree of §5; otherwise a flat adjustment.
func (ctl *Controller) fairShares(demands []fairshare.Demand, capacity int64) (map[string]int64, error) {
	hierarchical := false
	for _, name := range ctl.order {
		if ctl.funcs[name].User != "" {
			hierarchical = true
			break
		}
	}
	if !hierarchical {
		var allocs []fairshare.Allocation
		var err error
		if ctl.cfg.UncappedFairShare {
			allocs, err = fairshare.Adjust(demands, capacity)
		} else {
			allocs, err = fairshare.AdjustCapped(demands, capacity)
		}
		if err != nil {
			return nil, err
		}
		out := make(map[string]int64, len(allocs))
		for _, a := range allocs {
			out[a.ID] = a.Adjusted
		}
		return out, nil
	}
	// Two-level tree: users (weighted) → functions (weighted).
	root := &fairshare.Node{ID: "::cluster"}
	userNodes := make(map[string]*fairshare.Node)
	demandOf := make(map[string]int64, len(demands))
	for _, d := range demands {
		demandOf[d.ID] = d.Desired
	}
	for _, name := range ctl.order {
		f := ctl.funcs[name]
		user := f.User
		if user == "" {
			user = "::default"
		}
		un := userNodes[user]
		if un == nil {
			w := ctl.users[f.User]
			if f.User == "" || w == 0 {
				w = 1
			}
			un = &fairshare.Node{ID: "::user:" + user, Weight: w}
			userNodes[user] = un
			root.Children = append(root.Children, un)
		}
		un.Children = append(un.Children, &fairshare.Node{
			ID:      name,
			Weight:  f.Weight,
			Desired: demandOf[name],
		})
	}
	return fairshare.AllocateTree(root, capacity, !ctl.cfg.UncappedFairShare)
}

// expireDrained terminates Draining containers older than DrainTTL.
func (ctl *Controller) expireDrained(now time.Duration) {
	for _, name := range ctl.order {
		for _, c := range ctl.drainingContainers(name) {
			at, ok := ctl.drained[c.ID]
			if ok && now-at >= ctl.cfg.DrainTTL {
				ctl.terminate(c)
			}
		}
	}
}

// terminate removes a container everywhere.
func (ctl *Controller) terminate(c *cluster.Container) {
	delete(ctl.drained, c.ID)
	wasServable := c.Servable()
	if err := ctl.cluster.Terminate(c); err != nil {
		return
	}
	ctl.stats.Terminations++
	if wasServable {
		ctl.hooks.OnRemove(c)
	}
}

// createContainer places and cold-starts one container (possibly below
// standard size for the deflation policy's fragment-filling). On capacity
// failure it lazily reclaims drained containers and retries (§3.3: "any
// container marked for termination ... is actively terminated, and those
// resources are reallocated").
func (ctl *Controller) createContainer(f *Function, cpu int64) (*cluster.Container, error) {
	place := func() (*cluster.Container, error) {
		if cpu == f.Spec.CPUMillis {
			return ctl.cluster.Place(f.Spec.Name, cpu, f.Spec.MemoryMiB)
		}
		return ctl.cluster.PlaceDeflated(f.Spec.Name, f.Spec.CPUMillis, cpu, f.Spec.MemoryMiB)
	}
	c, err := place()
	if err != nil {
		if !ctl.reclaimDrainedFor(cpu, f.Spec.MemoryMiB) {
			return nil, err
		}
		c, err = place()
		if err != nil {
			return nil, err
		}
	}
	ctl.stats.Creations++
	ctl.hooks.ScheduleColdStart(c, f.Spec.ColdStart, func() {
		if c.State() != cluster.Starting {
			return // terminated while cold-starting
		}
		if err := ctl.cluster.MarkRunning(c); err == nil {
			ctl.hooks.OnReady(c)
		}
	})
	return c, nil
}

// reclaimDrainedFor terminates drained containers (oldest first, across
// all functions) until some node could fit the requested size. Reports
// whether any progress was made.
func (ctl *Controller) reclaimDrainedFor(cpu, mem int64) bool {
	type cand struct {
		c  *cluster.Container
		at time.Duration
	}
	var cands []cand
	for _, name := range ctl.order {
		for _, c := range ctl.drainingContainers(name) {
			cands = append(cands, cand{c, ctl.drained[c.ID]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].at != cands[j].at {
			return cands[i].at < cands[j].at
		}
		return cands[i].c.ID < cands[j].c.ID
	})
	progress := false
	for _, cd := range cands {
		if ctl.fits(cpu, mem) {
			return true
		}
		ctl.terminate(cd.c)
		progress = true
	}
	return progress && ctl.fits(cpu, mem)
}

func (ctl *Controller) fits(cpu, mem int64) bool {
	for _, n := range ctl.cluster.Nodes() {
		if n.Fits(cpu, mem) {
			return true
		}
	}
	return false
}

// markDraining transitions a container to lazy-reclaim state. The data
// path keeps serving on it until it is actually terminated.
func (ctl *Controller) markDraining(c *cluster.Container, now time.Duration) {
	if err := ctl.cluster.MarkDraining(c); err == nil {
		ctl.drained[c.ID] = now
		ctl.stats.Drains++
	}
}

// revive pulls a draining container back into service.
func (ctl *Controller) revive(c *cluster.Container) bool {
	if err := ctl.cluster.Revive(c); err != nil {
		return false
	}
	delete(ctl.drained, c.ID)
	ctl.stats.Revivals++
	return true
}
