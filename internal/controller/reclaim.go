package controller

import (
	"sort"

	"lass/internal/cluster"
)

// floorCPU returns the deflation floor (1-τ)·standard for a function.
func (ctl *Controller) floorCPU(f *Function) int64 {
	floor := int64(float64(f.Spec.CPUMillis) * (1 - ctl.cfg.DeflationThreshold))
	if floor < 1 {
		floor = 1
	}
	return floor
}

// stepCPU returns the per-iteration deflation increment for a function.
func (ctl *Controller) stepCPU(f *Function) int64 {
	step := int64(float64(f.Spec.CPUMillis) * ctl.cfg.DeflationIncrement)
	if step < 1 {
		step = 1
	}
	return step
}

// byReclaimOrder sorts containers for termination: lowest CPU allocation
// first (§3.3: "containers with the lowest resource allocations are marked
// for termination"), newest first among equals, so the longest-warm
// containers survive.
func byReclaimOrder(cs []*cluster.Container) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].CPUCurrent != cs[j].CPUCurrent {
			return cs[i].CPUCurrent < cs[j].CPUCurrent
		}
		return cs[i].ID > cs[j].ID
	})
}

// reconcileNormal brings one function's pool to want containers in the
// absence of resource pressure (§3.3): deflated containers are
// re-inflated, missing containers are created (reviving drained ones
// first), and surplus containers are marked for lazy termination. The
// local allocation path passes the model-computed desire; the external
// -grant path may pass a larger count to pre-provision for offloads.
func (ctl *Controller) reconcileNormal(f *Function, want int) error {
	now := ctl.hooks.Now()
	// Restore deflated containers to standard size while headroom allows.
	if !ctl.cfg.NoInflateOnSlack {
		for _, c := range ctl.liveContainers(f.Spec.Name) {
			if c.Deflated() {
				if err := ctl.cluster.Resize(c, c.CPUStandard); err == nil {
					ctl.stats.Inflations++
					if ctl.hooks.OnResize != nil {
						ctl.hooks.OnResize(c)
					}
				}
			}
		}
	}
	live := ctl.liveContainers(f.Spec.Name)
	switch {
	case len(live) < want:
		deficit := want - len(live)
		// Revive lazily-drained containers first: they are warm (§3.3).
		draining := ctl.drainingContainers(f.Spec.Name)
		sort.Slice(draining, func(i, j int) bool {
			return ctl.drained[draining[i].ID] > ctl.drained[draining[j].ID]
		})
		for _, c := range draining {
			if deficit == 0 {
				break
			}
			if ctl.revive(c) {
				deficit--
			}
		}
		for i := 0; i < deficit; i++ {
			if _, err := ctl.createContainer(f, f.Spec.CPUMillis); err != nil {
				// Fragmentation can block a standard container even
				// without aggregate pressure; the deflation policy may
				// create a smaller one instead (§4.2).
				if ctl.cfg.Policy == Deflation {
					if ctl.createFragment(f, f.Spec.CPUMillis) {
						continue
					}
				}
				break
			}
		}
	case len(live) > want:
		surplus := len(live) - want
		byReclaimOrder(live)
		for _, c := range live {
			if surplus == 0 {
				break
			}
			switch c.State() {
			case cluster.Starting:
				// Never entered service; reclaim immediately.
				ctl.terminate(c)
				surplus--
			case cluster.Running:
				ctl.markDraining(c, now)
				surplus--
			}
		}
	}
	return nil
}

// shrinkTo reduces a function's live CPU to at most grant using the
// configured reclamation policy (§4.2). Draining containers are terminated
// outright first: during overload reclamation is immediate, not lazy.
func (ctl *Controller) shrinkTo(f *Function, grant int64) error {
	for _, c := range ctl.drainingContainers(f.Spec.Name) {
		ctl.terminate(c)
	}
	live := ctl.liveContainers(f.Spec.Name)
	cur := liveCPU(live)
	if cur <= grant {
		return nil
	}
	if ctl.cfg.Policy == Deflation {
		cur = ctl.deflatePool(f, live, cur, grant)
		if cur <= grant {
			return nil
		}
		live = ctl.liveContainers(f.Spec.Name)
	}
	// Termination policy — or deflation exhausted at τ (§4.2: "some
	// containers are terminated until the aggregate CPU allocation ...
	// equals that of the non-deflated ones").
	byReclaimOrder(live)
	for _, c := range live {
		if cur <= grant {
			break
		}
		cur -= c.CPUCurrent
		ctl.terminate(c)
	}
	return nil
}

// deflatePool iteratively deflates all of a function's containers in small
// increments until the pool fits the grant or every container reaches the
// τ floor (§4.2). Returns the pool's resulting CPU.
func (ctl *Controller) deflatePool(f *Function, live []*cluster.Container, cur, grant int64) int64 {
	floor := ctl.floorCPU(f)
	step := ctl.stepCPU(f)
	for cur > grant {
		progressed := false
		for _, c := range live {
			if cur <= grant {
				break
			}
			if c.CPUCurrent <= floor {
				continue
			}
			target := c.CPUCurrent - step
			if target < floor {
				target = floor
			}
			// Do not reclaim more than still needed.
			if over := cur - grant; c.CPUCurrent-target > over {
				target = c.CPUCurrent - over
			}
			delta := c.CPUCurrent - target
			if delta <= 0 {
				continue
			}
			if err := ctl.cluster.Resize(c, target); err != nil {
				continue
			}
			cur -= delta
			progressed = true
			ctl.stats.Deflations++
			if ctl.hooks.OnResize != nil {
				ctl.hooks.OnResize(c)
			}
		}
		if !progressed {
			break
		}
	}
	return cur
}

// growTo raises a function's live CPU toward grant: inflate deflated
// containers first (restoring capacity when pressure eases, Fig 8c), then
// create standard containers, and — under the deflation policy — fill any
// remaining fragment with one deflated container, which is how deflation
// achieves strictly more concurrency than termination (§4.2).
func (ctl *Controller) growTo(f *Function, grant int64) error {
	live := ctl.liveContainers(f.Spec.Name)
	cur := liveCPU(live)
	if cur >= grant {
		return nil
	}
	budget := grant - cur
	// Inflate existing deflated containers toward standard.
	for _, c := range live {
		if budget == 0 {
			break
		}
		if !c.Deflated() {
			continue
		}
		want := c.CPUStandard - c.CPUCurrent
		if want > budget {
			want = budget
		}
		target := c.CPUCurrent + want
		// The node may lack headroom; inflate as far as it allows.
		if free := c.Node().CPUFree(); want > free {
			target = c.CPUCurrent + free
		}
		if target <= c.CPUCurrent {
			continue
		}
		delta := target - c.CPUCurrent
		if err := ctl.cluster.Resize(c, target); err != nil {
			continue
		}
		budget -= delta
		ctl.stats.Inflations++
		if ctl.hooks.OnResize != nil {
			ctl.hooks.OnResize(c)
		}
	}
	// Create standard containers while the budget allows.
	for budget >= f.Spec.CPUMillis {
		if _, err := ctl.createContainer(f, f.Spec.CPUMillis); err != nil {
			break // fragmentation; fall through to fragment filling
		}
		budget -= f.Spec.CPUMillis
	}
	// Deflation policy: one more (deflated) container in the remainder.
	if ctl.cfg.Policy == Deflation && budget >= ctl.floorCPU(f) {
		if ctl.createFragment(f, budget) {
			return nil
		}
	}
	return nil
}

// createFragment creates one deflated container no larger than budget (and
// no larger than standard), sized to the largest placeable fragment at or
// above the τ floor. Reports success.
func (ctl *Controller) createFragment(f *Function, budget int64) bool {
	floor := ctl.floorCPU(f)
	size := budget
	if size > f.Spec.CPUMillis {
		size = f.Spec.CPUMillis
	}
	if largest := ctl.cluster.LargestFreeCPU(); size > largest {
		size = largest
	}
	if size < floor {
		return false
	}
	_, err := ctl.createContainer(f, size)
	return err == nil
}

// Provision pre-warms a function with n standard containers, bypassing the
// model — used by experiments that start from a known allocation.
func (ctl *Controller) Provision(function string, n int) error {
	f, ok := ctl.funcs[function]
	if !ok {
		return errUnknown(function)
	}
	for i := 0; i < n; i++ {
		if _, err := ctl.createContainer(f, f.Spec.CPUMillis); err != nil {
			return err
		}
	}
	return nil
}

func errUnknown(fn string) error {
	return &unknownFunctionError{fn}
}

type unknownFunctionError struct{ fn string }

func (e *unknownFunctionError) Error() string {
	return "controller: unknown function " + e.fn
}
