package controller

import (
	"strings"
	"testing"
	"time"

	"lass/internal/cluster"
	"lass/internal/functions"
	"lass/internal/queuing"
)

// harness drives a Controller with fake time and instant cold starts.
type harness struct {
	t       *testing.T
	now     time.Duration
	cl      *cluster.Cluster
	ctl     *Controller
	ready   []*cluster.Container
	removed []*cluster.Container
	pending []func() // delayed cold starts when instant=false
	instant bool
}

func newHarness(t *testing.T, cfg Config, clCfg cluster.Config) *harness {
	t.Helper()
	h := &harness{t: t, instant: true}
	cl, err := cluster.New(clCfg)
	if err != nil {
		t.Fatal(err)
	}
	h.cl = cl
	hooks := Hooks{
		Now: func() time.Duration { return h.now },
		ScheduleColdStart: func(c *cluster.Container, delay time.Duration, ready func()) {
			if h.instant {
				ready()
			} else {
				h.pending = append(h.pending, ready)
			}
		},
		OnReady:  func(c *cluster.Container) { h.ready = append(h.ready, c) },
		OnRemove: func(c *cluster.Container) { h.removed = append(h.removed, c) },
		OnResize: func(c *cluster.Container) {},
	}
	ctl, err := New(cfg, cl, hooks)
	if err != nil {
		t.Fatal(err)
	}
	h.ctl = ctl
	return h
}

// offer feeds deterministic arrivals at the given rate over the window
// [h.now, h.now+dur), then advances the clock to the window's end.
func (h *harness) offer(fn string, rate float64, dur time.Duration) {
	end := h.now + dur
	if rate > 0 {
		gap := time.Duration(float64(time.Second) / rate)
		for t := h.now; t < end; t += gap {
			h.now = t
			h.ctl.RecordArrival(fn)
		}
	}
	h.now = end
}

func (h *harness) step() {
	h.t.Helper()
	if err := h.ctl.Step(); err != nil {
		h.t.Fatal(err)
	}
}

func liveOf(cl *cluster.Cluster, fn string) []*cluster.Container {
	var out []*cluster.Container
	for _, c := range cl.ContainersOf(fn) {
		if c.State() == cluster.Starting || c.State() == cluster.Running {
			out = append(out, c)
		}
	}
	return out
}

func mustSpec(t *testing.T, name string) functions.Spec {
	t.Helper()
	s, err := functions.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidatesConfig(t *testing.T) {
	cl, _ := cluster.New(cluster.PaperCluster())
	hooks := Hooks{
		Now:               func() time.Duration { return 0 },
		ScheduleColdStart: func(*cluster.Container, time.Duration, func()) {},
		OnReady:           func(*cluster.Container) {},
		OnRemove:          func(*cluster.Container) {},
	}
	if _, err := New(Config{}, nil, hooks); err == nil {
		t.Error("want error for nil cluster")
	}
	if _, err := New(Config{}, cl, Hooks{}); err == nil {
		t.Error("want error for missing hooks")
	}
	if _, err := New(Config{DeflationThreshold: 1.5}, cl, hooks); err == nil {
		t.Error("want error for threshold out of range")
	}
	if _, err := New(Config{DeflationIncrement: -0.1}, cl, hooks); err == nil {
		t.Error("want error for negative increment")
	}
}

func TestRegisterValidation(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	if _, err := h.ctl.Register(spec, "", 1, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ctl.Register(spec, "", 1, queuing.SLO{}); err == nil {
		t.Error("want error for duplicate registration")
	}
	if _, err := h.ctl.Register(mustSpec(t, "geofence"), "ghost", 1, queuing.SLO{}); err == nil {
		t.Error("want error for unregistered user")
	}
	bad := spec
	bad.Name = ""
	if _, err := h.ctl.Register(bad, "", 1, queuing.SLO{}); err == nil {
		t.Error("want error for invalid spec")
	}
	if err := h.ctl.RegisterUser("", 1); err == nil {
		t.Error("want error for empty user name")
	}
	if err := h.ctl.RegisterUser("u", 0); err == nil {
		t.Error("want error for zero user weight")
	}
	fns := h.ctl.Functions()
	if len(fns) != 1 || fns[0] != "micro-benchmark" {
		t.Errorf("functions=%v", fns)
	}
}

func TestScaleUpOnLoad(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond) // mu=10
	f, err := h.ctl.Register(spec, "", 1, queuing.SLO{})
	if err != nil {
		t.Fatal(err)
	}
	h.offer(spec.Name, 30, 30*time.Second)
	h.step()
	if f.LambdaHat < 25 || f.LambdaHat > 35 {
		t.Fatalf("lambdaHat=%v want ~30", f.LambdaHat)
	}
	want, err := queuing.MinimalContainers(f.LambdaHat, 10, h.ctl.cfg.SLO)
	if err != nil {
		t.Fatal(err)
	}
	if f.Desired != want {
		t.Errorf("desired=%d want %d", f.Desired, want)
	}
	if got := len(liveOf(h.cl, spec.Name)); got != want {
		t.Errorf("live containers=%d want %d", got, want)
	}
	if len(h.ready) != want {
		t.Errorf("ready callbacks=%d want %d", len(h.ready), want)
	}
}

func TestScaleDownMarksDrainingThenExpires(t *testing.T) {
	cfg := Config{DrainTTL: 30 * time.Second}
	h := newHarness(t, cfg, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	h.ctl.Register(spec, "", 1, queuing.SLO{})

	h.offer(spec.Name, 30, 30*time.Second)
	h.step()
	before := len(liveOf(h.cl, spec.Name))
	if before < 4 {
		t.Fatalf("setup: live=%d", before)
	}

	// Load vanishes; estimates decay over the 2-minute window.
	h.offer(spec.Name, 0, 3*time.Minute)
	h.step()
	after := len(liveOf(h.cl, spec.Name))
	if after != 0 {
		t.Errorf("live=%d want 0 after idle", after)
	}
	// Surplus went to Draining, not terminated (lazy, §3.3).
	draining := 0
	for _, c := range h.cl.ContainersOf(spec.Name) {
		if c.State() == cluster.Draining {
			draining++
		}
	}
	if draining != before {
		t.Errorf("draining=%d want %d", draining, before)
	}
	if len(h.removed) != 0 {
		t.Error("lazy drain must not remove containers from the data path yet")
	}

	// After the TTL, the next step reaps them.
	h.now += cfg.DrainTTL + time.Second
	h.step()
	if n := h.cl.LiveContainers(); n != 0 {
		t.Errorf("containers after TTL=%d want 0", n)
	}
	if len(h.removed) != before {
		t.Errorf("removed=%d want %d", len(h.removed), before)
	}
}

func TestDrainingContainersAreRevivedOnLoadReturn(t *testing.T) {
	h := newHarness(t, Config{DrainTTL: 10 * time.Minute}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	h.ctl.Register(spec, "", 1, queuing.SLO{})

	h.offer(spec.Name, 30, 30*time.Second)
	h.step()
	created := h.ctl.Stats().Creations

	h.offer(spec.Name, 0, 3*time.Minute)
	h.step()

	// Load returns: pool should be rebuilt by revival, not creation.
	h.offer(spec.Name, 30, 30*time.Second)
	h.step()
	if h.ctl.Stats().Creations != created {
		t.Errorf("creations went %d -> %d; expected revivals instead",
			created, h.ctl.Stats().Creations)
	}
	if h.ctl.Stats().Revivals == 0 {
		t.Error("no revivals recorded")
	}
}

func TestBurstReactsInOneStep(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	f, _ := h.ctl.Register(spec, "", 1, queuing.SLO{})

	h.offer(spec.Name, 5, 2*time.Minute)
	h.step()
	small := len(liveOf(h.cl, spec.Name))

	// 6x burst for 10 seconds: the short window must win immediately.
	h.offer(spec.Name, 30, 10*time.Second)
	h.step()
	if !f.Burst {
		t.Fatal("burst not flagged")
	}
	if f.LambdaHat < 25 {
		t.Errorf("lambdaHat=%v want ~30 (short window, unsmoothed)", f.LambdaHat)
	}
	if got := len(liveOf(h.cl, spec.Name)); got <= small {
		t.Errorf("containers=%d did not grow from %d on burst", got, small)
	}
}

func TestMinContainersFloor(t *testing.T) {
	h := newHarness(t, Config{MinContainers: 2}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	h.ctl.Register(spec, "", 1, queuing.SLO{})
	h.now = 10 * time.Second
	h.step() // no traffic at all
	if got := len(liveOf(h.cl, spec.Name)); got != 2 {
		t.Errorf("live=%d want MinContainers=2", got)
	}
}

// TestPartialConfigAppliesDocumentedDefaults is the regression for the
// silent-Termination bug: a Config that sets only unrelated fields must
// still resolve to the paper defaults — Deflation reclamation and capped
// fair share — exactly as the Config doc promises. Termination and
// uncapped shares remain available, but only as explicit opt-ins.
func TestPartialConfigAppliesDocumentedDefaults(t *testing.T) {
	h := newHarness(t, Config{MinContainers: 1}, cluster.PaperCluster())
	cfg := h.ctl.Config()
	if cfg.Policy != Deflation {
		t.Errorf("partial config resolved Policy=%v, want Deflation", cfg.Policy)
	}
	if cfg.UncappedFairShare {
		t.Error("partial config resolved to uncapped fair share; capped is the default")
	}
	d := Default()
	if d.Policy != Deflation || d.UncappedFairShare {
		t.Errorf("Default() = %+v no longer paper-faithful", d)
	}
	// Explicit opt-ins survive default filling.
	h2 := newHarness(t, Config{Policy: Termination, UncappedFairShare: true}, cluster.PaperCluster())
	if got := h2.ctl.Config(); got.Policy != Termination || !got.UncappedFairShare {
		t.Errorf("explicit Termination/uncapped overwritten: %+v", got)
	}
}

func TestProvision(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	h.ctl.Register(spec, "", 1, queuing.SLO{})
	if err := h.ctl.Provision(spec.Name, 3); err != nil {
		t.Fatal(err)
	}
	if got := len(liveOf(h.cl, spec.Name)); got != 3 {
		t.Errorf("live=%d", got)
	}
	if err := h.ctl.Provision("ghost", 1); err == nil ||
		!strings.Contains(err.Error(), "unknown function") {
		t.Errorf("want unknown-function error, got %v", err)
	}
}

func TestOverloadFairShareTerminationPolicy(t *testing.T) {
	// Two functions, equal weights, both demanding far beyond half the
	// cluster: each must end at its guaranteed ~50% share (Lemma 1), via
	// container termination.
	cfg := Config{Policy: Termination}
	h := newHarness(t, cfg, cluster.PaperCluster()) // 12000 mC
	mb := functions.MicroBenchmark(100 * time.Millisecond)
	mobile := mustSpec(t, "mobilenet-v2")
	h.ctl.Register(mb, "", 1, queuing.SLO{})
	h.ctl.Register(mobile, "", 1, queuing.SLO{})

	// Saturate the micro-benchmark first: it takes over the cluster.
	h.offer(mb.Name, 250, 30*time.Second)
	h.step()
	mbCPU := h.cl.CPUOf(mb.Name)
	if mbCPU <= 6000 {
		t.Fatalf("setup: micro-benchmark only has %d mC", mbCPU)
	}

	// MobileNet load arrives; both now overloaded. Feed both functions in
	// the same window so neither estimate decays.
	gap := 20 * time.Millisecond // 50 req/s for mb
	end := h.now + 30*time.Second
	for tt := h.now; tt < end; tt += gap {
		h.now = tt
		h.ctl.RecordArrival(mb.Name)
		if int(tt/gap)%5 == 0 { // 10 req/s for mobilenet
			h.ctl.RecordArrival(mobile.Name)
		}
	}
	h.now = end
	h.step()

	mbCPU = h.cl.CPUOf(mb.Name)
	moCPU := h.cl.CPUOf(mobile.Name)
	// Guaranteed share is 6000 each; termination quantizes to whole
	// containers (mobilenet: 2000 mC each -> exactly 6000; micro: 400 -> 6000).
	if mbCPU > 6000 {
		t.Errorf("micro-benchmark kept %d mC > fair share 6000", mbCPU)
	}
	if moCPU < 4000 {
		t.Errorf("mobilenet got %d mC, below within-a-container of its 6000 share", moCPU)
	}
	if h.ctl.Stats().Overloads == 0 {
		t.Error("overload step not counted")
	}
	if h.ctl.Stats().Deflations != 0 {
		t.Error("termination policy must not deflate")
	}
}

func TestOverloadDeflationPolicyKeepsMoreContainers(t *testing.T) {
	// The deflation policy must leave the shrunk function with at least
	// as many containers as the termination policy would (§4.2: "allows a
	// function to have strictly more containers").
	run := func(policy ReclamationPolicy) (containers int, cpu int64, util float64) {
		h := newHarness(t, Config{Policy: policy}, cluster.PaperCluster())
		mb := functions.MicroBenchmark(100 * time.Millisecond)
		mobile := mustSpec(t, "mobilenet-v2")
		h.ctl.Register(mb, "", 1, queuing.SLO{})
		h.ctl.Register(mobile, "", 1, queuing.SLO{})
		// MobileNet grabs most of the cluster.
		h.offer(mobile.Name, 18, 30*time.Second)
		h.step()
		// Then the micro-benchmark bursts; overload.
		gap := 10 * time.Millisecond // 100 req/s micro
		end := h.now + 30*time.Second
		for tt := h.now; tt < end; tt += gap {
			h.now = tt
			h.ctl.RecordArrival(mb.Name)
			if int(tt/gap)%6 == 0 {
				h.ctl.RecordArrival(mobile.Name)
			}
		}
		h.now = end
		h.step()
		return len(liveOf(h.cl, mobile.Name)), h.cl.CPUOf(mobile.Name), h.cl.CPUUtilization()
	}
	tN, tCPU, tUtil := run(Termination)
	dN, dCPU, dUtil := run(Deflation)
	if dN < tN {
		t.Errorf("deflation left %d containers < termination %d", dN, tN)
	}
	if dCPU < tCPU {
		t.Errorf("deflation left %d mC < termination %d (functions must get >= resources)", dCPU, tCPU)
	}
	if dUtil < tUtil {
		t.Errorf("deflation utilization %.3f < termination %.3f", dUtil, tUtil)
	}
}

func TestDeflationRespectsThreshold(t *testing.T) {
	h := newHarness(t, Config{Policy: Deflation, DeflationThreshold: 0.30}, cluster.PaperCluster())
	mb := functions.MicroBenchmark(100 * time.Millisecond)
	mobile := mustSpec(t, "mobilenet-v2")
	h.ctl.Register(mb, "", 1, queuing.SLO{})
	h.ctl.Register(mobile, "", 1, queuing.SLO{})
	h.offer(mobile.Name, 18, 30*time.Second)
	h.step()
	gap := 10 * time.Millisecond
	end := h.now + 30*time.Second
	for tt := h.now; tt < end; tt += gap {
		h.now = tt
		h.ctl.RecordArrival(mb.Name)
		if int(tt/gap)%6 == 0 {
			h.ctl.RecordArrival(mobile.Name)
		}
	}
	h.now = end
	h.step()
	for _, c := range h.cl.ContainersOf(mobile.Name) {
		if c.Alive() && c.CPUFraction() < 0.70-1e-9 {
			t.Errorf("container %d deflated to %.2f, below 1-τ=0.70", c.ID, c.CPUFraction())
		}
	}
	if h.ctl.Stats().Deflations == 0 {
		t.Error("no deflations recorded")
	}
}

func TestHierarchicalSharesWeightedUsers(t *testing.T) {
	// User2 has twice user1's weight: under full overload user2's
	// functions get ~2/3 of the cluster (§6.7 setup).
	h := newHarness(t, Config{Policy: Termination}, cluster.PaperCluster())
	h.ctl.RegisterUser("user1", 1)
	h.ctl.RegisterUser("user2", 2)
	f1 := functions.MicroBenchmark(100 * time.Millisecond)
	f2 := mustSpec(t, "binaryalert")
	h.ctl.Register(f1, "user1", 1, queuing.SLO{})
	h.ctl.Register(f2, "user2", 1, queuing.SLO{})
	// Both saturate (micro: 400mC × huge, binaryalert: 500mC × huge).
	gap := 2 * time.Millisecond
	end := h.now + 30*time.Second
	for tt := h.now; tt < end; tt += gap {
		h.now = tt
		h.ctl.RecordArrival(f1.Name)
		h.ctl.RecordArrival(f2.Name)
	}
	h.now = end
	h.step()
	u1 := h.cl.CPUOf(f1.Name)
	u2 := h.cl.CPUOf(f2.Name)
	if u1 > 4000 {
		t.Errorf("user1 got %d mC > 1/3 share 4000", u1)
	}
	if u2 < 7000 {
		t.Errorf("user2 got %d mC, want ~8000 (2/3 share)", u2)
	}
}

func TestColdStartDelayedReady(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	h.instant = false
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	h.ctl.Register(spec, "", 1, queuing.SLO{})
	h.offer(spec.Name, 20, 30*time.Second)
	h.step()
	if len(h.ready) != 0 {
		t.Fatal("ready fired before cold start completed")
	}
	for _, c := range liveOf(h.cl, spec.Name) {
		if c.State() != cluster.Starting {
			t.Errorf("container %d state %v want starting", c.ID, c.State())
		}
	}
	for _, fn := range h.pending {
		fn()
	}
	if len(h.ready) == 0 {
		t.Fatal("ready not fired after cold start")
	}
	for _, c := range liveOf(h.cl, spec.Name) {
		if c.State() != cluster.Running {
			t.Errorf("container %d state %v want running", c.ID, c.State())
		}
	}
}

func TestColdStartOnTerminatedContainerIsNoop(t *testing.T) {
	h := newHarness(t, Config{Policy: Termination}, cluster.PaperCluster())
	h.instant = false
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	h.ctl.Register(spec, "", 1, queuing.SLO{})
	h.ctl.Provision(spec.Name, 1)
	c := h.cl.ContainersOf(spec.Name)[0]
	h.cl.Terminate(c)
	for _, fn := range h.pending {
		fn() // must not panic or mark a terminated container running
	}
	if len(h.ready) != 0 {
		t.Error("ready fired for terminated container")
	}
}

func TestUseLearnedRates(t *testing.T) {
	h := newHarness(t, Config{UseLearnedRates: true}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond) // spec says mu=10
	f, _ := h.ctl.Register(spec, "", 1, queuing.SLO{})
	// Teach the learner the function is actually 2x slower (mu=5).
	for i := 0; i < 100; i++ {
		f.Learner().Observe(1.0, 200*time.Millisecond)
	}
	h.offer(spec.Name, 20, 30*time.Second)
	h.step()
	wantSlow, _ := queuing.MinimalContainers(f.LambdaHat, 5, h.ctl.cfg.SLO)
	if f.Desired != wantSlow {
		t.Errorf("desired=%d want %d (learned mu=5)", f.Desired, wantSlow)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	spec := functions.MicroBenchmark(100 * time.Millisecond)
	h.ctl.Register(spec, "", 1, queuing.SLO{})
	h.offer(spec.Name, 20, 30*time.Second)
	h.step()
	st := h.ctl.Stats()
	if st.Steps != 1 || st.Creations == 0 {
		t.Errorf("stats=%+v", st)
	}
}

func TestPolicyString(t *testing.T) {
	if Termination.String() != "termination" || Deflation.String() != "deflation" {
		t.Error("policy strings wrong")
	}
}

func TestHeadroomSignal(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	if h.ctl.Headroom() != h.cl.TotalCPU() {
		t.Errorf("initial headroom %d want full capacity %d", h.ctl.Headroom(), h.cl.TotalCPU())
	}
	if h.ctl.Overloaded() {
		t.Error("controller overloaded before any Step")
	}
	spec := mustSpec(t, "squeezenet")
	if _, err := h.ctl.Register(spec, "", 1, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	// Modest load: headroom shrinks but stays positive.
	h.offer(spec.Name, 20, 5*time.Second)
	h.step()
	if h.ctl.Overloaded() || h.ctl.Headroom() <= 0 {
		t.Errorf("headroom %d at 20 req/s on a %d mC cluster; want positive", h.ctl.Headroom(), h.cl.TotalCPU())
	}
	if h.ctl.Headroom() >= h.cl.TotalCPU() {
		t.Errorf("headroom %d did not shrink under load", h.ctl.Headroom())
	}
	// Offered load far past cluster capacity: headroom must go negative.
	h.offer(spec.Name, 800, 5*time.Second)
	h.step()
	if !h.ctl.Overloaded() || h.ctl.Headroom() >= 0 {
		t.Errorf("headroom %d at 800 req/s on a %d mC cluster; want negative", h.ctl.Headroom(), h.cl.TotalCPU())
	}
}

// TestExternalGrantsEnforced pins the external-grant enforcement path the
// federation-wide allocator drives: a grant below the model desire binds
// (the pool shrinks to the granted CPU), a grant above it pre-provisions
// (the pool grows past the model count for expected offloads), and a nil
// grant map restores local allocation.
func TestExternalGrantsEnforced(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster()) // 3 nodes x 4000 mC
	spec := mustSpec(t, "squeezenet")                    // 1000 mC standard
	if _, err := h.ctl.Register(spec, "", 1, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	if h.ctl.GrantedExternally() {
		t.Error("GrantedExternally before any grant")
	}

	// Establish a local desire of several containers.
	h.offer(spec.Name, 40, 5*time.Second)
	h.step()
	f, _ := h.ctl.Function(spec.Name)
	if f.Desired < 3 {
		t.Fatalf("desire %d containers at 40 req/s; want >= 3", f.Desired)
	}
	ds := h.ctl.Demands()
	if len(ds) != 1 || ds[0].DesiredCPU != int64(f.Desired)*spec.CPUMillis {
		t.Fatalf("Demands() = %+v, want desired CPU %d", ds, int64(f.Desired)*spec.CPUMillis)
	}

	// Binding grant: the pool must shrink to the granted CPU.
	h.ctl.SetCapacityGrants(map[string]int64{spec.Name: 2000})
	if !h.ctl.GrantedExternally() {
		t.Error("GrantedExternally false after SetCapacityGrants")
	}
	h.offer(spec.Name, 40, 5*time.Second)
	h.step()
	if cpu := liveCPU(liveOf(h.cl, spec.Name)); cpu > 2000 {
		t.Errorf("live CPU %d under a 2000 mC grant", cpu)
	}

	// Pre-provisioning grant: the pool must grow past the model desire.
	h.ctl.SetCapacityGrants(map[string]int64{spec.Name: 9000})
	h.offer(spec.Name, 40, 5*time.Second)
	h.step()
	if live := len(liveOf(h.cl, spec.Name)); live < 9 {
		t.Errorf("%d live containers under a 9000 mC grant; want 9 (pre-provisioned)", live)
	}

	// An infeasible grant set is scaled to cluster capacity, not placed
	// blindly.
	h.ctl.SetCapacityGrants(map[string]int64{spec.Name: 50000})
	h.offer(spec.Name, 40, 5*time.Second)
	h.step()
	if cpu := liveCPU(liveOf(h.cl, spec.Name)); cpu > h.cl.TotalCPU() {
		t.Errorf("live CPU %d exceeds cluster capacity %d", cpu, h.cl.TotalCPU())
	}

	// Back to local allocation: the pool returns toward the model desire
	// (surplus drains lazily, so live count falls to the desire after the
	// drain TTL).
	h.ctl.SetCapacityGrants(nil)
	if h.ctl.GrantedExternally() {
		t.Error("GrantedExternally after clearing grants")
	}
	h.offer(spec.Name, 40, 5*time.Second)
	h.step()
	h.now += h.ctl.Config().DrainTTL
	h.offer(spec.Name, 40, 5*time.Second)
	h.step()
	f, _ = h.ctl.Function(spec.Name)
	if live := len(liveOf(h.cl, spec.Name)); live > f.Desired+1 {
		t.Errorf("%d live containers after restoring local allocation; desire %d", live, f.Desired)
	}
}

// TestExternalGrantsKeepHeadroomSignal verifies the demand-derived
// headroom signal is unchanged by external grants: it still reflects
// capacity minus model desire, so the federation's placement layer reads
// the same overload signal in both modes.
func TestExternalGrantsKeepHeadroomSignal(t *testing.T) {
	h := newHarness(t, Config{}, cluster.PaperCluster())
	spec := mustSpec(t, "squeezenet")
	if _, err := h.ctl.Register(spec, "", 1, queuing.SLO{}); err != nil {
		t.Fatal(err)
	}
	h.ctl.SetCapacityGrants(map[string]int64{spec.Name: 1000})
	h.offer(spec.Name, 800, 5*time.Second)
	h.step()
	if !h.ctl.Overloaded() {
		t.Error("offered 800 req/s: demand-derived headroom should be negative under grants too")
	}
}

// TestGrantLeaseExpiryRestoresLocalPath is the controller-level lease
// test, built on the same harness the PR 3 external-grant equivalence
// tests use: a binding grant with a finite lease shrinks the pool, the
// lease lapses without renewal, and from that Step on the controller is
// bit-for-bit the local-enforcement controller again — same
// GrantedExternally signal, same live pool, same headroom as a twin
// controller that was never granted, fed identical arrivals.
func TestGrantLeaseExpiryRestoresLocalPath(t *testing.T) {
	spec := mustSpec(t, "squeezenet")
	mk := func() *harness {
		h := newHarness(t, Config{}, cluster.PaperCluster())
		if _, err := h.ctl.Register(spec, "", 1, queuing.SLO{}); err != nil {
			t.Fatal(err)
		}
		return h
	}
	granted, local := mk(), mk()

	// Epoch 1: identical load; the granted twin gets a binding 2000 mC
	// grant leased for 4s — lapsing before the next 5s epoch.
	for _, h := range []*harness{granted, local} {
		h.offer(spec.Name, 40, 5*time.Second)
	}
	granted.ctl.SetCapacityGrantsLeased(map[string]int64{spec.Name: 2000}, 4*time.Second)
	for _, h := range []*harness{granted, local} {
		h.step()
	}
	if !granted.ctl.GrantedExternally() {
		t.Fatal("lease not yet expired but GrantedExternally is false")
	}
	if cpu := liveCPU(liveOf(granted.cl, spec.Name)); cpu > 2000 {
		t.Fatalf("binding leased grant not enforced: %d mC live", cpu)
	}
	if cpuL := liveCPU(liveOf(local.cl, spec.Name)); cpuL <= 2000 {
		t.Fatalf("local twin unexpectedly small (%d mC); the grant was not binding", cpuL)
	}

	// Epoch 2: both clocks pass the t=9s deadline with no renewal. The
	// next Step must expire the lease and enforce locally.
	for _, h := range []*harness{granted, local} {
		h.offer(spec.Name, 40, 5*time.Second)
		h.step()
	}
	if granted.ctl.GrantedExternally() {
		t.Error("GrantedExternally still true after the lease lapsed")
	}
	if got := granted.ctl.Stats().GrantLeaseExpiries; got != 1 {
		t.Errorf("GrantLeaseExpiries = %d, want 1", got)
	}
	// Bit-for-bit the local path again: identical estimator state implies
	// identical desires, and post-expiry enforcement must rebuild the
	// identical live pool.
	gf, _ := granted.ctl.Function(spec.Name)
	lf, _ := local.ctl.Function(spec.Name)
	if gf.Desired != lf.Desired || gf.LambdaHat != lf.LambdaHat {
		t.Errorf("post-expiry model state diverged: desired %d/%d lambda %v/%v",
			gf.Desired, lf.Desired, gf.LambdaHat, lf.LambdaHat)
	}
	if g, l := liveCPU(liveOf(granted.cl, spec.Name)), liveCPU(liveOf(local.cl, spec.Name)); g != l {
		t.Errorf("post-expiry live pool %d mC != never-granted twin %d mC", g, l)
	}
	if g, l := granted.ctl.Headroom(), local.ctl.Headroom(); g != l {
		t.Errorf("post-expiry headroom %d != never-granted twin %d", g, l)
	}

	// A renewal before the deadline keeps the lease alive: the expiry
	// check is against the latest deadline, not the first.
	h := mk()
	h.offer(spec.Name, 40, 5*time.Second)
	h.ctl.SetCapacityGrantsLeased(map[string]int64{spec.Name: 2000}, 4*time.Second)
	h.step()
	h.now += 3 * time.Second
	h.ctl.SetCapacityGrantsLeased(map[string]int64{spec.Name: 2000}, 4*time.Second)
	if h.ctl.ExpireGrantLease() {
		t.Error("ExpireGrantLease dropped a just-renewed lease")
	}
	h.now += 3 * time.Second // past the first deadline, inside the renewed one
	if h.ctl.ExpireGrantLease() {
		t.Error("ExpireGrantLease honoured the stale first deadline over the renewal")
	}
	h.now += 2 * time.Second // past the renewed deadline
	if !h.ctl.ExpireGrantLease() {
		t.Error("ExpireGrantLease kept a lapsed renewed lease")
	}
	if h.ctl.GrantedExternally() {
		t.Error("grants survived an explicit expiry")
	}
}
