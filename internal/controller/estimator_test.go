package controller

import (
	"math"
	"testing"
	"time"
)

func TestDualWindowValidation(t *testing.T) {
	if _, err := NewDualWindow(DualWindowConfig{Short: 0, Long: time.Minute, BurstFactor: 2}); err == nil {
		t.Error("want error for zero short window")
	}
	if _, err := NewDualWindow(DualWindowConfig{Short: time.Minute, Long: time.Minute, BurstFactor: 2}); err == nil {
		t.Error("want error for short >= long")
	}
	if _, err := NewDualWindow(DualWindowConfig{Short: time.Second, Long: time.Minute, BurstFactor: 1}); err == nil {
		t.Error("want error for burst factor <= 1")
	}
}

func TestDualWindowSteadyRate(t *testing.T) {
	d, err := NewDualWindow(DefaultDualWindow())
	if err != nil {
		t.Fatal(err)
	}
	// 20 req/s for 3 minutes (deterministic spacing).
	for ms := 0; ms < 180_000; ms += 50 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	rate, burst := d.Rate(180 * time.Second)
	if burst {
		t.Error("steady load flagged as burst")
	}
	if math.Abs(rate-20) > 1 {
		t.Errorf("rate=%v want ~20", rate)
	}
}

func TestDualWindowBurstDetection(t *testing.T) {
	d, _ := NewDualWindow(DefaultDualWindow())
	// 5 req/s for 2 minutes, then 25 req/s for 10 seconds.
	for ms := 0; ms < 120_000; ms += 200 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	for ms := 120_000; ms < 130_000; ms += 40 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	rate, burst := d.Rate(130 * time.Second)
	if !burst {
		t.Fatal("5x rate jump not detected as burst")
	}
	if math.Abs(rate-25) > 3 {
		t.Errorf("burst rate=%v want ~25 (short window)", rate)
	}
}

func TestDualWindowNoBurstUsesLongWindow(t *testing.T) {
	d, _ := NewDualWindow(DefaultDualWindow())
	// 10 req/s for 110s then 15 req/s for 10s: 1.5x is below the 2x
	// burst factor, so the long window should dominate.
	for ms := 0; ms < 110_000; ms += 100 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	for ms := 110_000; ms < 120_000; ms += 67 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	rate, burst := d.Rate(120 * time.Second)
	if burst {
		t.Error("1.5x jump should not trip the 2x burst factor")
	}
	if rate > 12 {
		t.Errorf("rate=%v should be near the long-window average ~10.4", rate)
	}
}

func TestDualWindowEarlyRunScaling(t *testing.T) {
	// 3 seconds into a run, a 10 req/s stream must estimate ~10, not be
	// diluted by 117 seconds of empty history.
	d, _ := NewDualWindow(DefaultDualWindow())
	for ms := 0; ms < 3000; ms += 100 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	rate, _ := d.Rate(3 * time.Second)
	if math.Abs(rate-10) > 2 {
		t.Errorf("early rate=%v want ~10", rate)
	}
}

func TestDualWindowIdleDecaysToZero(t *testing.T) {
	d, _ := NewDualWindow(DefaultDualWindow())
	for ms := 0; ms < 10_000; ms += 10 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	// 5 minutes of silence: every bucket has rolled over.
	rate, burst := d.Rate(310 * time.Second)
	if rate != 0 || burst {
		t.Errorf("rate=%v burst=%v after long idle", rate, burst)
	}
}

func TestDualWindowRateDropsAfterLoadEnds(t *testing.T) {
	d, _ := NewDualWindow(DefaultDualWindow())
	for ms := 0; ms < 120_000; ms += 50 {
		d.RecordArrival(time.Duration(ms) * time.Millisecond)
	}
	rate1, _ := d.Rate(120 * time.Second)
	rate2, _ := d.Rate(180 * time.Second) // 60s of silence
	if rate2 >= rate1 {
		t.Errorf("rate did not decay: %v -> %v", rate1, rate2)
	}
}

func TestEWMA(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Error("want error for alpha 0")
	}
	if _, err := NewEWMA(1.1); err == nil {
		t.Error("want error for alpha > 1")
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if v := e.Update(10); v != 10 {
		t.Errorf("first update=%v want 10 (no history)", v)
	}
	if v := e.Update(20); v != 15 {
		t.Errorf("second update=%v want 15", v)
	}
	if e.Value() != 15 {
		t.Errorf("value=%v", e.Value())
	}
	e.Reset()
	if v := e.Update(100); v != 100 {
		t.Errorf("after reset update=%v want 100", v)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e, _ := NewEWMA(0.3)
	for i := 0; i < 50; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("value=%v", e.Value())
	}
}
