package controller

import (
	"fmt"
	"time"
)

// Predictor forecasts a function's arrival rate for the next epoch from
// the estimator's observations. §5 notes that "predicting arrival rate
// using time series analysis or machine learning techniques may be more
// effective" than the reactive window estimate and that "one can plug in
// any load prediction method of choice into LaSS with ease" — Predictor is
// that plug point. The controller feeds each epoch's estimate to the
// predictor and provisions for the predicted rate instead of the raw
// estimate (never below zero).
type Predictor interface {
	// Observe records the rate estimated for the epoch ending at now.
	Observe(now time.Duration, rate float64)
	// Predict returns the rate expected over the next horizon.
	Predict(now time.Duration, horizon time.Duration) float64
}

// TrendPredictor extrapolates a linear trend over a sliding window of
// epoch rate estimates (double-smoothing-free, deliberately simple): if
// load has been ramping, the next epoch is provisioned for where the ramp
// will be, not where it was. A Damping factor below 1 tempers the
// extrapolation.
type TrendPredictor struct {
	window  int
	damping float64
	times   []float64 // seconds
	rates   []float64
}

// NewTrendPredictor returns a predictor fitting a least-squares line over
// the last window observations. damping in (0,1] scales the extrapolated
// slope (1 = full trend).
func NewTrendPredictor(window int, damping float64) (*TrendPredictor, error) {
	if window < 2 {
		return nil, fmt.Errorf("controller: trend window %d < 2", window)
	}
	if damping <= 0 || damping > 1 {
		return nil, fmt.Errorf("controller: damping %v out of (0,1]", damping)
	}
	return &TrendPredictor{window: window, damping: damping}, nil
}

// Observe implements Predictor.
func (p *TrendPredictor) Observe(now time.Duration, rate float64) {
	p.times = append(p.times, now.Seconds())
	p.rates = append(p.rates, rate)
	if len(p.times) > p.window {
		p.times = p.times[1:]
		p.rates = p.rates[1:]
	}
}

// Predict implements Predictor: least-squares line through the window,
// evaluated at now+horizon, clamped at zero.
func (p *TrendPredictor) Predict(now time.Duration, horizon time.Duration) float64 {
	n := len(p.times)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return p.rates[0]
	}
	var sumT, sumR, sumTT, sumTR float64
	for i := 0; i < n; i++ {
		sumT += p.times[i]
		sumR += p.rates[i]
		sumTT += p.times[i] * p.times[i]
		sumTR += p.times[i] * p.rates[i]
	}
	den := float64(n)*sumTT - sumT*sumT
	last := p.rates[n-1]
	if den == 0 {
		return last
	}
	slope := (float64(n)*sumTR - sumT*sumR) / den
	intercept := (sumR - slope*sumT) / float64(n)
	at := (now + horizon).Seconds()
	pred := intercept + slope*at
	// Damp the extrapolation beyond the last observation.
	pred = last + (pred-last)*p.damping
	if pred < 0 {
		pred = 0
	}
	return pred
}

// SetPredictor attaches a predictor to a registered function. Pass nil to
// remove it. With a predictor attached, the controller provisions each
// epoch for Predict(now, EvalInterval) instead of the raw estimate.
func (ctl *Controller) SetPredictor(function string, p Predictor) error {
	f, ok := ctl.funcs[function]
	if !ok {
		return errUnknown(function)
	}
	f.predictor = p
	return nil
}
