package functions

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"lass/internal/xrand"
)

func TestCatalogMatchesTable1(t *testing.T) {
	want := map[string]struct {
		cpu int64
		mem int64
	}{
		"micro-benchmark": {400, 256},
		"mobilenet-v2":    {2000, 1024},
		"shufflenet-v2":   {1000, 512},
		"squeezenet":      {1000, 512},
		"binaryalert":     {500, 256},
		"geofence":        {300, 128},
		"image-resizer":   {800, 256},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d entries want %d", len(cat), len(want))
	}
	for _, s := range cat {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected function %q", s.Name)
			continue
		}
		if s.CPUMillis != w.cpu || s.MemoryMiB != w.mem {
			t.Errorf("%s: size %d mC + %d MiB, want %d + %d (Table 1)",
				s.Name, s.CPUMillis, s.MemoryMiB, w.cpu, w.mem)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("geofence")
	if err != nil {
		t.Fatal(err)
	}
	if s.Language != "JavaScript" {
		t.Errorf("language %q", s.Language)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("want error for unknown function")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good, _ := ByName("geofence")
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.CPUMillis = 0 },
		func(s *Spec) { s.MemoryMiB = -1 },
		func(s *Spec) { s.MeanServiceTime = 0 },
		func(s *Spec) { s.SCV = -1 },
		func(s *Spec) { s.Slack = 1 },
		func(s *Spec) { s.Slack = -0.1 },
		func(s *Spec) { s.Weight = 0 },
	}
	for i, mutate := range cases {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestServiceRate(t *testing.T) {
	s := MicroBenchmark(100 * time.Millisecond)
	if r := s.ServiceRate(); math.Abs(r-10) > 1e-9 {
		t.Errorf("rate=%v want 10", r)
	}
	s2 := MicroBenchmark(200 * time.Millisecond)
	if r := s2.ServiceRate(); math.Abs(r-5) > 1e-9 {
		t.Errorf("rate=%v want 5", r)
	}
}

func TestDeflationWithinSlackIsCheap(t *testing.T) {
	// Fig 7: "for 5 of the functions tested, deflating the CPU by 30%
	// only yields a small penalty on service time".
	for _, name := range []string{"binaryalert", "geofence", "image-resizer", "shufflenet-v2", "squeezenet"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := s.ServiceTimeMultiplier(0.75) // 25% deflation, within slack for these
		if m > 1.10 {
			t.Errorf("%s: 25%% deflation multiplier %v > 1.10", name, m)
		}
	}
}

func TestDeflationBeyondSlackDegradesProportionally(t *testing.T) {
	s, _ := ByName("squeezenet") // slack 0.25, u = 0.75
	m50 := s.ServiceTimeMultiplier(0.5)
	// Starved region: roughly u/f = 1.5x, plus the small epsilon.
	if m50 < 1.4 || m50 > 1.7 {
		t.Errorf("50%% deflation multiplier %v want ~1.5", m50)
	}
	m30 := s.ServiceTimeMultiplier(0.3)
	if m30 < 2.3 || m30 > 2.8 {
		t.Errorf("70%% deflation multiplier %v want ~2.5", m30)
	}
}

func TestMobileNetDegradesImmediately(t *testing.T) {
	// §6.5: MobileNet runs at ~100% CPU, "almost the worst case for
	// deflation" — 30% deflation costs ~30%+ more inference time.
	s, _ := ByName("mobilenet-v2")
	m := s.ServiceTimeMultiplier(0.7)
	if m < 1.3 {
		t.Errorf("mobilenet 30%% deflation multiplier %v want >= 1.3", m)
	}
	// Other functions at the same deflation are much less affected.
	g, _ := ByName("geofence")
	if gm := g.ServiceTimeMultiplier(0.7); gm >= m {
		t.Errorf("geofence multiplier %v should be below mobilenet %v", gm, m)
	}
}

func TestMultiplierProperties(t *testing.T) {
	f := func(nameIdx uint8, frac uint8) bool {
		cat := Catalog()
		s := cat[int(nameIdx)%len(cat)]
		f1 := 0.05 + 0.95*float64(frac)/255
		f2 := f1 / 2
		m1 := s.ServiceTimeMultiplier(f1)
		m2 := s.ServiceTimeMultiplier(f2)
		// Monotone: less CPU never speeds you up; and never below 1.
		return m2 >= m1-1e-12 && m1 >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMultiplierEdgeCases(t *testing.T) {
	s, _ := ByName("squeezenet")
	if m := s.ServiceTimeMultiplier(1.0); m != 1 {
		t.Errorf("full size multiplier %v", m)
	}
	if m := s.ServiceTimeMultiplier(1.5); m != 1 {
		t.Errorf("inflated multiplier %v want 1", m)
	}
	if m := s.ServiceTimeMultiplier(0); !math.IsInf(m, 1) {
		t.Errorf("zero CPU multiplier %v want +Inf", m)
	}
	if r := s.RateAt(0); r != 0 {
		t.Errorf("zero CPU rate %v want 0", r)
	}
}

func TestRateAtConsistentWithMultiplier(t *testing.T) {
	s, _ := ByName("binaryalert")
	for _, f := range []float64{0.3, 0.5, 0.7, 1.0} {
		want := s.ServiceRate() / s.ServiceTimeMultiplier(f)
		if got := s.RateAt(f); math.Abs(got-want) > 1e-9 {
			t.Errorf("f=%v: rate %v want %v", f, got, want)
		}
	}
}

func TestSampleServiceTimeMean(t *testing.T) {
	rng := xrand.New(55)
	for _, scv := range []float64{0, 0.25, 1} {
		s := MicroBenchmark(100 * time.Millisecond)
		s.SCV = scv
		var sum time.Duration
		n := 50000
		for i := 0; i < n; i++ {
			sum += s.SampleServiceTime(rng, 1.0)
		}
		mean := sum / time.Duration(n)
		if mean < 95*time.Millisecond || mean > 105*time.Millisecond {
			t.Errorf("scv=%v: sampled mean %v want ~100ms", scv, mean)
		}
	}
}

func TestSampleServiceTimeDeflatedMean(t *testing.T) {
	rng := xrand.New(56)
	s := MicroBenchmark(100 * time.Millisecond) // slack 0.35
	var sum time.Duration
	n := 50000
	for i := 0; i < n; i++ {
		sum += s.SampleServiceTime(rng, 0.4)
	}
	mean := (sum / time.Duration(n)).Seconds()
	want := s.MeanServiceTimeAt(0.4).Seconds()
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("deflated sampled mean %vs want %vs", mean, want)
	}
}

func TestServicePQuantiles(t *testing.T) {
	// Exponential: p99 = -mean·ln(0.01) ≈ 4.605·mean.
	s := MicroBenchmark(100 * time.Millisecond)
	p99 := s.ServiceP(0.99).Seconds()
	if math.Abs(p99-0.4605) > 0.001 {
		t.Errorf("exp p99=%v want ~0.4605", p99)
	}
	// Deterministic: every quantile is the mean.
	s.SCV = 0
	if q := s.ServiceP(0.99); q != s.MeanServiceTime {
		t.Errorf("deterministic p99=%v", q)
	}
	// Lognormal: sanity — p50 below mean (right-skew), p99 above.
	s.SCV = 0.5
	if q := s.ServiceP(0.5); q >= s.MeanServiceTime {
		t.Errorf("lognormal median %v not below mean", q)
	}
	if q := s.ServiceP(0.99); q <= s.MeanServiceTime {
		t.Errorf("lognormal p99 %v not above mean", q)
	}
}

func TestNormQuantile(t *testing.T) {
	cases := map[float64]float64{0.5: 0, 0.975: 1.959964, 0.99: 2.326348, 0.025: -1.959964}
	for p, want := range cases {
		if got := normQuantile(p); math.Abs(got-want) > 1e-5 {
			t.Errorf("normQuantile(%v)=%v want %v", p, got, want)
		}
	}
	if !math.IsInf(normQuantile(0), -1) || !math.IsInf(normQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
}

func TestIsDNN(t *testing.T) {
	for _, n := range []string{"mobilenet-v2", "shufflenet-v2", "squeezenet"} {
		if !IsDNN(n) {
			t.Errorf("%s should be DNN", n)
		}
	}
	for _, n := range []string{"geofence", "binaryalert", "micro-benchmark", "image-resizer"} {
		if IsDNN(n) {
			t.Errorf("%s should not be DNN", n)
		}
	}
}

func TestProfileInterpolation(t *testing.T) {
	p, err := NewProfile([]ProfilePoint{
		{CPUFraction: 1.0, Mean: 100 * time.Millisecond},
		{CPUFraction: 0.5, Mean: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := p.MeanAt(0.75); m != 150*time.Millisecond {
		t.Errorf("interpolated %v want 150ms", m)
	}
	if m := p.MeanAt(0.25); m != 200*time.Millisecond {
		t.Errorf("clamped low %v want 200ms", m)
	}
	if m := p.MeanAt(2.0); m != 100*time.Millisecond {
		t.Errorf("clamped high %v want 100ms", m)
	}
	if r := p.RateAt(1.0); math.Abs(r-10) > 1e-9 {
		t.Errorf("rate %v want 10", r)
	}
}

func TestProfileValidation(t *testing.T) {
	if _, err := NewProfile(nil); err == nil {
		t.Error("want error for empty profile")
	}
	if _, err := NewProfile([]ProfilePoint{{CPUFraction: 0, Mean: time.Second}}); err == nil {
		t.Error("want error for zero fraction")
	}
	if _, err := NewProfile([]ProfilePoint{
		{CPUFraction: 0.5, Mean: time.Second},
		{CPUFraction: 0.5, Mean: 2 * time.Second},
	}); err == nil {
		t.Error("want error for duplicate fractions")
	}
}

func TestProfileFromSpecMatchesModel(t *testing.T) {
	s, _ := ByName("squeezenet")
	p, err := ProfileFromSpec(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.25, 0.5, 0.75, 1.0} {
		want := s.MeanServiceTimeAt(f).Seconds()
		got := p.MeanAt(f).Seconds()
		if math.Abs(got-want)/want > 0.03 {
			t.Errorf("f=%v: profile %v model %v", f, got, want)
		}
	}
	if _, err := ProfileFromSpec(s, 0); err == nil {
		t.Error("want error for zero points")
	}
}

func TestLearnerConverges(t *testing.T) {
	l, err := NewLearner(0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	s := MicroBenchmark(100 * time.Millisecond)
	for i := 0; i < 20000; i++ {
		l.Observe(1.0, s.SampleServiceTime(rng, 1.0))
	}
	m, ok := l.MeanServiceTime(1.0)
	if !ok {
		t.Fatal("no estimate")
	}
	if m < 80*time.Millisecond || m > 120*time.Millisecond {
		t.Errorf("learned mean %v want ~100ms", m)
	}
	r, ok := l.Rate(1.0)
	if !ok || math.Abs(r-10) > 2.5 {
		t.Errorf("learned rate %v want ~10", r)
	}
	scv, ok := l.SCV(1.0)
	if !ok || scv < 0.5 || scv > 1.6 {
		t.Errorf("learned SCV %v want ~1 (exponential)", scv)
	}
	if l.Observations() != 20000 {
		t.Errorf("observations %d", l.Observations())
	}
}

func TestLearnerBucketsBySize(t *testing.T) {
	l, _ := NewLearner(0.1)
	l.Observe(1.0, 100*time.Millisecond)
	l.Observe(0.5, 200*time.Millisecond)
	m1, ok1 := l.MeanServiceTime(1.0)
	m2, ok2 := l.MeanServiceTime(0.52) // same decile bucket as 0.5
	if !ok1 || !ok2 {
		t.Fatal("missing estimates")
	}
	if m1 != 100*time.Millisecond || m2 != 200*time.Millisecond {
		t.Errorf("bucket means %v %v", m1, m2)
	}
	if _, ok := l.MeanServiceTime(0.15); ok {
		t.Error("unobserved bucket should report no estimate")
	}
}

func TestLearnerValidation(t *testing.T) {
	if _, err := NewLearner(0); err == nil {
		t.Error("want error for alpha 0")
	}
	if _, err := NewLearner(1.5); err == nil {
		t.Error("want error for alpha > 1")
	}
}

func TestLearnerTracksDrift(t *testing.T) {
	// EWMA must follow a service-time regime change.
	l, _ := NewLearner(0.1)
	for i := 0; i < 200; i++ {
		l.Observe(1.0, 100*time.Millisecond)
	}
	for i := 0; i < 200; i++ {
		l.Observe(1.0, 300*time.Millisecond)
	}
	m, _ := l.MeanServiceTime(1.0)
	if m < 280*time.Millisecond {
		t.Errorf("learner stuck at %v after drift", m)
	}
}
