// Package functions models the serverless functions of the paper's
// evaluation (§6.1, Table 1): their standard container sizes, service-time
// behaviour, and — central to the deflation experiments — how service time
// degrades when a container's CPU allocation is deflated (Fig 7).
//
// The paper runs six real workloads (three DNN inference models, a malware
// detector, geofencing, and image resizing) plus a configurable
// micro-benchmark. Here each is a Spec: a black box with a container size,
// a service-time distribution, and a CPU-slack parameter. That is exactly
// the interface the LaSS controller has to the real functions ("the
// platform does not have any specific knowledge of the function itself",
// §2.1), so the substitution preserves every behaviour the control plane
// can observe.
package functions

import (
	"fmt"
	"math"
	"sort"
	"time"

	"lass/internal/xrand"
)

// Spec describes one serverless function as the platform sees it.
type Spec struct {
	// Name identifies the function (unique within a deployment).
	Name string
	// Language records the implementation language(s) from Table 1
	// (informational; it does not affect the model).
	Language string
	// CPUMillis is the standard container CPU size in millicores
	// (1000 = 1 vCPU). Table 1 column "Standard Size".
	CPUMillis int64
	// MemoryMiB is the standard container memory size in MiB.
	MemoryMiB int64
	// MeanServiceTime is the mean request execution time in a standard,
	// undeflated container.
	MeanServiceTime time.Duration
	// SCV is the squared coefficient of variation of the service time
	// distribution: 1 = exponential (the paper's modeling assumption),
	// 0 = deterministic, other values are sampled lognormal.
	SCV float64
	// Slack is the fraction of the standard container's CPU the function
	// typically leaves unused (§4.2: "typical slack can be up to 50%").
	// Deflation within the slack costs little; beyond it, service time
	// grows in proportion to the CPU deficit. MobileNet's slack is ~0:
	// "even if the container is assigned 2 vCPUs there is little
	// headroom" (§6.5).
	Slack float64
	// ColdStart is the container provisioning latency: the time between
	// the controller requesting a container and it accepting requests.
	ColdStart time.Duration
	// Weight is the default fair-share weight ω_i (§4.1).
	Weight float64
}

// Validate checks the spec for structural errors.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("functions: empty name")
	}
	if s.CPUMillis <= 0 {
		return fmt.Errorf("functions: %s: non-positive CPU size %d", s.Name, s.CPUMillis)
	}
	if s.MemoryMiB <= 0 {
		return fmt.Errorf("functions: %s: non-positive memory size %d", s.Name, s.MemoryMiB)
	}
	if s.MeanServiceTime <= 0 {
		return fmt.Errorf("functions: %s: non-positive service time %v", s.Name, s.MeanServiceTime)
	}
	if s.SCV < 0 {
		return fmt.Errorf("functions: %s: negative SCV %v", s.Name, s.SCV)
	}
	if s.Slack < 0 || s.Slack >= 1 {
		return fmt.Errorf("functions: %s: slack %v out of [0,1)", s.Name, s.Slack)
	}
	if s.Weight <= 0 {
		return fmt.Errorf("functions: %s: non-positive weight %v", s.Name, s.Weight)
	}
	return nil
}

// ServiceRate returns μ, the mean service rate (req/s) of one standard
// container.
func (s Spec) ServiceRate() float64 {
	return 1 / s.MeanServiceTime.Seconds()
}

// deflationPenaltyEpsilon is the mild overhead applied to deflation within
// the slack region: reclaiming truly idle CPU is not perfectly free
// (scheduler effects), matching the "small penalty" visible in Fig 7.
const deflationPenaltyEpsilon = 0.15

// ServiceTimeMultiplier returns how much longer a request takes in a
// container running at cpuFraction of the standard CPU size. The model
// behind Fig 7:
//
//   - Let u = 1 - Slack be the CPU the function actually uses. While
//     cpuFraction ≥ u, deflation only consumes slack: the multiplier rises
//     gently (1 + ε·deflated).
//   - Below u the function is CPU-starved and execution stretches by u/f.
//
// cpuFraction above 1 (an inflated container) does not speed the function
// up beyond its standard-size performance.
func (s Spec) ServiceTimeMultiplier(cpuFraction float64) float64 {
	if cpuFraction >= 1 {
		return 1
	}
	if cpuFraction <= 0 {
		return math.Inf(1)
	}
	u := 1 - s.Slack
	if cpuFraction >= u {
		return 1 + deflationPenaltyEpsilon*(1-cpuFraction)
	}
	atBoundary := 1 + deflationPenaltyEpsilon*(1-u)
	return atBoundary * u / cpuFraction
}

// RateAt returns the effective service rate of a container at the given
// fraction of the standard CPU size.
func (s Spec) RateAt(cpuFraction float64) float64 {
	m := s.ServiceTimeMultiplier(cpuFraction)
	if math.IsInf(m, 1) {
		return 0
	}
	return s.ServiceRate() / m
}

// MeanServiceTimeAt returns the mean service time at the given CPU
// fraction.
func (s Spec) MeanServiceTimeAt(cpuFraction float64) time.Duration {
	return time.Duration(float64(s.MeanServiceTime) * s.ServiceTimeMultiplier(cpuFraction))
}

// SampleServiceTime draws one service time for a request executing in a
// container at the given CPU fraction. SCV selects the distribution family:
// 0 → deterministic, 1 → exponential, otherwise lognormal with matching
// mean and SCV.
func (s Spec) SampleServiceTime(rng *xrand.Rand, cpuFraction float64) time.Duration {
	mean := float64(s.MeanServiceTime) * s.ServiceTimeMultiplier(cpuFraction)
	if math.IsInf(mean, 1) {
		return time.Duration(math.MaxInt64)
	}
	switch {
	case s.SCV == 0:
		return time.Duration(mean)
	case s.SCV == 1:
		return time.Duration(rng.Exp(1 / mean))
	default:
		sigma2 := math.Log(1 + s.SCV)
		mu := math.Log(mean) - sigma2/2
		return time.Duration(rng.LogNormal(mu, math.Sqrt(sigma2)))
	}
}

// ServiceP returns an approximate p-quantile (0<p<1) of the service time
// distribution at the standard size, used when an SLO covers waiting plus
// service (§3.1's t_p99 = d − 1/μ_p99).
func (s Spec) ServiceP(p float64) time.Duration {
	mean := float64(s.MeanServiceTime)
	switch {
	case s.SCV == 0:
		return s.MeanServiceTime
	case s.SCV == 1:
		return time.Duration(-mean * math.Log(1-p))
	default:
		sigma2 := math.Log(1 + s.SCV)
		mu := math.Log(mean) - sigma2/2
		// Lognormal quantile via inverse error function approximation.
		z := normQuantile(p)
		return time.Duration(math.Exp(mu + math.Sqrt(sigma2)*z))
	}
}

// normQuantile is Acklam's approximation of the standard normal inverse
// CDF, accurate to ~1e-9 over (0,1).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	pl, ph := 0.02425, 1-0.02425
	switch {
	case p < pl:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > ph:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Catalog returns the seven functions of Table 1 with the paper's standard
// container sizes. Service-time means are not reported in the paper; the
// values here are calibrated to the paper's experiment dynamics (e.g. the
// micro-benchmark's 100/200 ms configurations in §6.2, MobileNet's heavy
// inference in Figs 6-8) and documented per entry.
func Catalog() []Spec {
	return []Spec{
		// Configurable CPU-bound micro-benchmark; §6.2 runs it at 100 ms
		// and 200 ms service times. Default here: 100 ms (μ = 10 req/s).
		{Name: "micro-benchmark", Language: "Python", CPUMillis: 400, MemoryMiB: 256,
			MeanServiceTime: 100 * time.Millisecond, SCV: 1, Slack: 0.35,
			ColdStart: 250 * time.Millisecond, Weight: 1},
		// MobileNet v2: the heavyweight DNN. Runs at ~100% CPU of its
		// 2-vCPU container (§6.5) → slack ≈ 0. Fig 6 drives it at
		// 3-8 req/s across a handful of containers → ~250 ms inference.
		{Name: "mobilenet-v2", Language: "Python", CPUMillis: 2000, MemoryMiB: 1024,
			MeanServiceTime: 250 * time.Millisecond, SCV: 0.25, Slack: 0.02,
			ColdStart: 500 * time.Millisecond, Weight: 1},
		// ShuffleNet v2: lightweight DNN, 1 vCPU.
		{Name: "shufflenet-v2", Language: "Python", CPUMillis: 1000, MemoryMiB: 512,
			MeanServiceTime: 150 * time.Millisecond, SCV: 0.25, Slack: 0.25,
			ColdStart: 400 * time.Millisecond, Weight: 1},
		// SqueezeNet: lightweight DNN used for the heterogeneous model
		// validation (Fig 4) at rates up to 100 req/s.
		{Name: "squeezenet", Language: "Python", CPUMillis: 1000, MemoryMiB: 512,
			MeanServiceTime: 100 * time.Millisecond, SCV: 0.25, Slack: 0.25,
			ColdStart: 400 * time.Millisecond, Weight: 1},
		// BinaryAlert: serverless malware detection (YARA scans).
		{Name: "binaryalert", Language: "Python", CPUMillis: 500, MemoryMiB: 256,
			MeanServiceTime: 50 * time.Millisecond, SCV: 1, Slack: 0.35,
			ColdStart: 250 * time.Millisecond, Weight: 1},
		// GeoFence: point-in-polygon checks; very light JS.
		{Name: "geofence", Language: "JavaScript", CPUMillis: 300, MemoryMiB: 128,
			MeanServiceTime: 10 * time.Millisecond, SCV: 1, Slack: 0.40,
			ColdStart: 150 * time.Millisecond, Weight: 1},
		// Image Resizer: JS driving a WASM (C) codec.
		{Name: "image-resizer", Language: "JavaScript, WASM (C)", CPUMillis: 800, MemoryMiB: 256,
			MeanServiceTime: 60 * time.Millisecond, SCV: 0.5, Slack: 0.30,
			ColdStart: 200 * time.Millisecond, Weight: 1},
	}
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("functions: unknown function %q", name)
}

// MicroBenchmark returns the configurable micro-benchmark sized for the
// given mean service time, mirroring the paper's ability to "control the
// amount of CPU cycles consumed by each invocation" (§6.1).
func MicroBenchmark(mean time.Duration) Spec {
	s, _ := ByName("micro-benchmark")
	s.MeanServiceTime = mean
	return s
}

// IsDNN reports whether the named catalog function is one of the three DNN
// inference models (used by the Fig 7 harness, which plots DNN and non-DNN
// functions separately).
func IsDNN(name string) bool {
	switch name {
	case "mobilenet-v2", "shufflenet-v2", "squeezenet":
		return true
	}
	return false
}

// ProfilePoint is one entry of an offline service-time profile:
// the measured mean service time with the container at CPUFraction of its
// standard size.
type ProfilePoint struct {
	CPUFraction float64
	Mean        time.Duration
}

// Profile is an offline-measured service-time profile (§5: "load offline
// profiling results which may be measured by either the user or the
// service provider"). Lookups interpolate linearly between points.
type Profile struct {
	points []ProfilePoint
}

// NewProfile builds a profile from measured points (any order). At least
// one point is required.
func NewProfile(points []ProfilePoint) (*Profile, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("functions: empty profile")
	}
	ps := append([]ProfilePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].CPUFraction < ps[j].CPUFraction })
	for i, p := range ps {
		if p.CPUFraction <= 0 || p.Mean <= 0 {
			return nil, fmt.Errorf("functions: invalid profile point %+v", p)
		}
		if i > 0 && ps[i-1].CPUFraction == p.CPUFraction {
			return nil, fmt.Errorf("functions: duplicate profile fraction %v", p.CPUFraction)
		}
	}
	return &Profile{points: ps}, nil
}

// MeanAt returns the interpolated mean service time at the given CPU
// fraction, clamping outside the measured range.
func (p *Profile) MeanAt(cpuFraction float64) time.Duration {
	ps := p.points
	if cpuFraction <= ps[0].CPUFraction {
		return ps[0].Mean
	}
	if cpuFraction >= ps[len(ps)-1].CPUFraction {
		return ps[len(ps)-1].Mean
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].CPUFraction >= cpuFraction })
	lo, hi := ps[i-1], ps[i]
	frac := (cpuFraction - lo.CPUFraction) / (hi.CPUFraction - lo.CPUFraction)
	return lo.Mean + time.Duration(frac*float64(hi.Mean-lo.Mean))
}

// RateAt returns the profiled service rate at the given CPU fraction.
func (p *Profile) RateAt(cpuFraction float64) float64 {
	return 1 / p.MeanAt(cpuFraction).Seconds()
}

// ProfileFromSpec synthesizes an offline profile by "measuring" the spec's
// slack model at n evenly spaced CPU fractions in (0, 1]. It stands in for
// the provider-side profiling run the paper describes.
func ProfileFromSpec(s Spec, n int) (*Profile, error) {
	if n < 1 {
		return nil, fmt.Errorf("functions: profile needs at least 1 point")
	}
	pts := make([]ProfilePoint, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		pts = append(pts, ProfilePoint{CPUFraction: f, Mean: s.MeanServiceTimeAt(f)})
	}
	return NewProfile(pts)
}
