package functions

import (
	"fmt"
	"sync"
	"time"
)

// Learner estimates a function's service-time distribution online, the
// second of the two approaches §5 describes ("use an online learning
// algorithm to learn the service time distribution(s) over time"). Because
// deflation produces containers of different sizes with different service
// rates, observations are bucketed by CPU fraction (decile buckets) and an
// exponentially weighted moving average is maintained per bucket, alongside
// an EWMA of the second moment so the controller can derive the SCV needed
// by the G/G/c extension.
//
// Learner is safe for concurrent use: in the real-time runtime completions
// are observed from many goroutines.
type Learner struct {
	mu     sync.Mutex
	alpha  float64
	bucket map[int]*ewmaPair
}

type ewmaPair struct {
	mean  float64 // seconds
	m2    float64 // second moment, seconds^2
	count uint64
}

// NewLearner returns a learner with the given EWMA smoothing factor
// (0 < alpha <= 1; higher weights recent observations more).
func NewLearner(alpha float64) (*Learner, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("functions: learner alpha %v out of (0,1]", alpha)
	}
	return &Learner{alpha: alpha, bucket: make(map[int]*ewmaPair)}, nil
}

// bucketOf maps a CPU fraction to a decile bucket: 0.95 and 1.0 share a
// bucket, 0.65 and 0.70 share another, and so on.
func bucketOf(cpuFraction float64) int {
	if cpuFraction >= 1 {
		return 10
	}
	if cpuFraction <= 0 {
		return 0
	}
	return int(cpuFraction * 10)
}

// Observe records one completed request's service time for a container
// running at the given CPU fraction.
func (l *Learner) Observe(cpuFraction float64, serviceTime time.Duration) {
	s := serviceTime.Seconds()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.bucket[bucketOf(cpuFraction)]
	if b == nil {
		b = &ewmaPair{mean: s, m2: s * s}
		l.bucket[bucketOf(cpuFraction)] = b
	} else {
		b.mean = l.alpha*s + (1-l.alpha)*b.mean
		b.m2 = l.alpha*s*s + (1-l.alpha)*b.m2
	}
	b.count++
}

// MeanServiceTime returns the learned mean service time for containers at
// the given CPU fraction, and whether any observation exists for that
// bucket.
func (l *Learner) MeanServiceTime(cpuFraction float64) (time.Duration, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.bucket[bucketOf(cpuFraction)]
	if b == nil || b.count == 0 {
		return 0, false
	}
	return time.Duration(b.mean * float64(time.Second)), true
}

// Rate returns the learned service rate μ (req/s) at the given CPU
// fraction.
func (l *Learner) Rate(cpuFraction float64) (float64, bool) {
	m, ok := l.MeanServiceTime(cpuFraction)
	if !ok || m <= 0 {
		return 0, false
	}
	return 1 / m.Seconds(), true
}

// SCV returns the learned squared coefficient of variation of the service
// time at the given CPU fraction.
func (l *Learner) SCV(cpuFraction float64) (float64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.bucket[bucketOf(cpuFraction)]
	if b == nil || b.count < 2 || b.mean == 0 {
		return 0, false
	}
	variance := b.m2 - b.mean*b.mean
	if variance < 0 {
		variance = 0
	}
	return variance / (b.mean * b.mean), true
}

// Observations returns the total number of samples across all buckets.
func (l *Learner) Observations() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n uint64
	for _, b := range l.bucket {
		n += b.count
	}
	return n
}
