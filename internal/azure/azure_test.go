package azure

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lass/internal/xrand"
)

func TestReadWriteRoundTrip(t *testing.T) {
	rng := xrand.New(3)
	var rows []Row
	for _, a := range []Archetype{Steady, Periodic, Bursty, Sporadic} {
		r, err := Synthesize(rng, SynthConfig{Archetype: a, MeanPerMinute: 20, Minutes: 120})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, r)
	}
	var buf bytes.Buffer
	if err := Write(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows=%d want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i].FunctionHash != rows[i].FunctionHash || got[i].Trigger != rows[i].Trigger {
			t.Errorf("row %d metadata mismatch", i)
		}
		if len(got[i].Counts) != len(rows[i].Counts) {
			t.Fatalf("row %d counts length %d want %d", i, len(got[i].Counts), len(rows[i].Counts))
		}
		for j := range rows[i].Counts {
			if got[i].Counts[j] != rows[i].Counts[j] {
				t.Fatalf("row %d minute %d: %v want %v", i, j, got[i].Counts[j], rows[i].Counts[j])
			}
		}
	}
}

func TestReadSkipsHeader(t *testing.T) {
	csv := "HashOwner,HashApp,HashFunction,Trigger,1,2,3\no,a,f,http,1,2,3\n"
	rows, err := Read(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].Counts[2] != 3 {
		t.Errorf("counts=%v", rows[0].Counts)
	}
}

func TestReadHeaderlessCSV(t *testing.T) {
	csv := "o,a,f,http,5,0,7\n"
	rows, err := Read(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Counts[0] != 5 {
		t.Errorf("rows=%v", rows)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	if _, err := Read(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("want error for too few columns")
	}
	if _, err := Read(strings.NewReader("o,a,f,http,xyz\no,a,f,http,1\n")); err == nil {
		t.Error("want error for non-numeric count after header detection")
	}
	if _, err := Read(strings.NewReader("HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,-3\n")); err == nil {
		t.Error("want error for negative count")
	}
}

func TestWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Error("want error for empty rows")
	}
}

func TestWindowClamps(t *testing.T) {
	r := Row{Counts: []float64{0, 1, 2, 3, 4}}
	w := r.Window(1, 3)
	if len(w) != 2 || w[0] != 1 || w[1] != 2 {
		t.Errorf("window=%v", w)
	}
	if w := r.Window(-5, 100); len(w) != 5 {
		t.Errorf("clamped window len=%d", len(w))
	}
	if w := r.Window(4, 2); w != nil {
		t.Errorf("inverted window=%v", w)
	}
}

func TestScheduleFromTrace(t *testing.T) {
	r := Row{Counts: []float64{60, 600}}
	s, err := Schedule(r.Counts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RateAt(0); got != 1 {
		t.Errorf("minute 0 rate=%v", got)
	}
	if got := s.RateAt(90 * 1e9); got != 10 {
		t.Errorf("minute 1 rate=%v", got)
	}
}

func TestSynthesizeMeansApproximatelyCorrect(t *testing.T) {
	rng := xrand.New(17)
	for _, a := range []Archetype{Steady, Periodic, Bursty} {
		r, err := Synthesize(rng, SynthConfig{Archetype: a, MeanPerMinute: 30})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Counts) != MinutesPerDay {
			t.Fatalf("%v: %d minutes", a, len(r.Counts))
		}
		st := Summarize(r.Counts)
		if math.Abs(st.Mean-30)/30 > 0.35 {
			t.Errorf("%v: mean %v want ~30", a, st.Mean)
		}
	}
}

func TestSporadicIsSporadic(t *testing.T) {
	// The MobileNet trace shape (§6.7): mostly idle, rare intense bursts.
	rng := xrand.New(19)
	r, err := Synthesize(rng, SynthConfig{Archetype: Sporadic, MeanPerMinute: 10})
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(r.Counts)
	idleFrac := 1 - float64(st.NonZero)/float64(len(r.Counts))
	if idleFrac < 0.80 {
		t.Errorf("sporadic trace only %.0f%% idle", idleFrac*100)
	}
	if st.CV < 3 {
		t.Errorf("sporadic CV=%v want >3", st.CV)
	}
	if st.BusyShare < 0.5 {
		t.Errorf("busiest 5%% of minutes carry only %.0f%% of load", st.BusyShare*100)
	}
}

func TestSteadyIsSmootherThanSporadic(t *testing.T) {
	rng := xrand.New(23)
	steady, _ := Synthesize(rng, SynthConfig{Archetype: Steady, MeanPerMinute: 30})
	sporadic, _ := Synthesize(rng, SynthConfig{Archetype: Sporadic, MeanPerMinute: 30})
	if Summarize(steady.Counts).CV >= Summarize(sporadic.Counts).CV {
		t.Error("steady trace should have lower CV than sporadic")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := Synthesize(rng, SynthConfig{Archetype: Steady, MeanPerMinute: -1}); err == nil {
		t.Error("want error for negative mean")
	}
	if _, err := Synthesize(rng, SynthConfig{Archetype: Archetype(99), MeanPerMinute: 1}); err == nil {
		t.Error("want error for unknown archetype")
	}
	if _, err := Synthesize(rng, SynthConfig{Archetype: Steady, MeanPerMinute: 1, Minutes: -5}); err == nil {
		t.Error("want error for negative minutes")
	}
}

func TestSynthesizeCustomLength(t *testing.T) {
	rng := xrand.New(29)
	r, err := Synthesize(rng, SynthConfig{Archetype: Steady, MeanPerMinute: 5, Minutes: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Counts) != 60 {
		t.Errorf("len=%d", len(r.Counts))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Mean != 0 || st.Max != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestTotalInvocations(t *testing.T) {
	r := Row{Counts: []float64{1, 2, 3}}
	if r.TotalInvocations() != 6 {
		t.Errorf("total=%v", r.TotalInvocations())
	}
}

func TestTriggers(t *testing.T) {
	rng := xrand.New(31)
	p, _ := Synthesize(rng, SynthConfig{Archetype: Periodic, MeanPerMinute: 1, Minutes: 10})
	if p.Trigger != "timer" {
		t.Errorf("periodic trigger=%q", p.Trigger)
	}
	s, _ := Synthesize(rng, SynthConfig{Archetype: Sporadic, MeanPerMinute: 1, Minutes: 10})
	if s.Trigger != "event" {
		t.Errorf("sporadic trigger=%q", s.Trigger)
	}
}

func TestArchetypeStrings(t *testing.T) {
	if Steady.String() != "steady" || Sporadic.String() != "sporadic" ||
		Periodic.String() != "periodic" || Bursty.String() != "bursty" {
		t.Error("archetype strings wrong")
	}
}
