// Package azure handles workloads in the format of the Azure Functions
// Trace 2019 from the Azure Public Dataset, which the paper's §6.7
// experiment samples: per-function invocation counts aggregated per minute
// over a 24-hour day (CSV rows with owner/app/function hashes, a trigger
// column, and 1440 minute columns).
//
// The real dataset is not redistributable here, so the package provides
// both a reader for the genuine CSVs (drop them in and the Fig 9 harness
// will use them) and a statistical synthesizer that produces traces with
// the shapes the paper relies on: steady diurnal load for most functions
// and the "highly sporadic pattern" the MobileNet workload follows (§6.7).
// See DESIGN.md §1 for the substitution rationale.
package azure

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"lass/internal/workload"
	"lass/internal/xrand"
)

// MinutesPerDay is the number of per-minute buckets in one trace row.
const MinutesPerDay = 1440

// Row is one function's day of per-minute invocation counts.
type Row struct {
	OwnerHash    string
	AppHash      string
	FunctionHash string
	Trigger      string
	Counts       []float64 // length MinutesPerDay for genuine traces
}

// TotalInvocations returns the sum of the row's counts.
func (r Row) TotalInvocations() float64 {
	var s float64
	for _, c := range r.Counts {
		s += c
	}
	return s
}

// Window returns the counts for minutes [from, to), clamped to the row.
// The paper samples 11:00-12:00 (minutes 660-720) for the Fig 9 hour.
func (r Row) Window(from, to int) []float64 {
	if from < 0 {
		from = 0
	}
	if to > len(r.Counts) {
		to = len(r.Counts)
	}
	if from >= to {
		return nil
	}
	return r.Counts[from:to]
}

// Schedule converts a count window into an arrival-rate schedule
// ("discrete change mode that adjusts the arrival rate each minute", §6.1).
func Schedule(counts []float64) (*workload.Schedule, error) {
	return workload.FromPerMinuteCounts(counts)
}

// Read parses trace rows from CSV in the Azure schema:
// HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440. A header row is
// detected and skipped. Rows may have fewer minute columns (partial days).
func Read(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var rows []Row
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("azure: csv parse: %w", err)
		}
		line++
		if len(rec) < 5 {
			return nil, fmt.Errorf("azure: line %d: want >=5 columns, got %d", line, len(rec))
		}
		if line == 1 && looksLikeHeader(rec) {
			continue
		}
		row := Row{
			OwnerHash:    rec[0],
			AppHash:      rec[1],
			FunctionHash: rec[2],
			Trigger:      rec[3],
			Counts:       make([]float64, 0, len(rec)-4),
		}
		for i, f := range rec[4:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("azure: line %d minute %d: %w", line, i+1, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("azure: line %d minute %d: negative count %v", line, i+1, v)
			}
			row.Counts = append(row.Counts, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func looksLikeHeader(rec []string) bool {
	// The genuine dataset header is detectable by its field names (its
	// minute columns are the numerals "1".."1440", so numeric sniffing of
	// column 5 would misfire).
	return rec[0] == "HashOwner" || rec[3] == "Trigger"
}

// Write emits rows in the Azure CSV schema, with a header.
func Write(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if len(rows) == 0 {
		return fmt.Errorf("azure: no rows to write")
	}
	n := len(rows[0].Counts)
	header := []string{"HashOwner", "HashApp", "HashFunction", "Trigger"}
	for i := 1; i <= n; i++ {
		header = append(header, strconv.Itoa(i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.OwnerHash, r.AppHash, r.FunctionHash, r.Trigger}
		for _, c := range r.Counts {
			rec = append(rec, strconv.FormatFloat(c, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Archetype names a statistical shape for synthesized traces. The Azure
// characterization paper (Shahrad et al., referenced as the trace's source)
// reports orders-of-magnitude rate variability across functions, a large
// population of rarely-invoked functions, and diurnal cycles in the
// aggregate — the archetypes cover the shapes §6.7 relies on.
type Archetype int

const (
	// Steady is diurnal load: a day-long sinusoid plus Poisson noise.
	Steady Archetype = iota
	// Periodic is timer-triggered load: spikes at a fixed interval over a
	// low base.
	Periodic
	// Bursty is on/off load: alternating busy and quiet intervals with
	// geometric dwell times.
	Bursty
	// Sporadic is mostly-idle load with rare intense bursts — the "highly
	// sporadic pattern" of the paper's MobileNet workload (§6.7).
	Sporadic
)

// String returns the archetype name.
func (a Archetype) String() string {
	switch a {
	case Steady:
		return "steady"
	case Periodic:
		return "periodic"
	case Bursty:
		return "bursty"
	case Sporadic:
		return "sporadic"
	}
	return fmt.Sprintf("archetype(%d)", int(a))
}

// SynthConfig configures trace synthesis.
type SynthConfig struct {
	Archetype Archetype
	// MeanPerMinute is the target long-run mean invocations per minute.
	MeanPerMinute float64
	// Minutes is the trace length (default MinutesPerDay).
	Minutes int
}

// Synthesize produces one trace row with the archetype's shape. The row's
// long-run mean is approximately MeanPerMinute (exactly in expectation).
func Synthesize(rng *xrand.Rand, cfg SynthConfig) (Row, error) {
	if cfg.MeanPerMinute < 0 {
		return Row{}, fmt.Errorf("azure: negative mean %v", cfg.MeanPerMinute)
	}
	n := cfg.Minutes
	if n == 0 {
		n = MinutesPerDay
	}
	if n < 0 {
		return Row{}, fmt.Errorf("azure: negative minutes %d", cfg.Minutes)
	}
	counts := make([]float64, n)
	switch cfg.Archetype {
	case Steady:
		for i := range counts {
			phase := 2 * math.Pi * float64(i) / float64(MinutesPerDay)
			mean := cfg.MeanPerMinute * (1 + 0.4*math.Sin(phase))
			counts[i] = float64(rng.Poisson(mean))
		}
	case Periodic:
		period := 15 // minutes between timer firings
		base := cfg.MeanPerMinute * 0.2
		spike := (cfg.MeanPerMinute - base) * float64(period)
		for i := range counts {
			mean := base
			if i%period == 0 {
				mean += spike
			}
			counts[i] = float64(rng.Poisson(mean))
		}
	case Bursty:
		// Two-state modulated Poisson process: busy at 3x mean, quiet at
		// 0.1x. Busy dwell ~10 min, quiet dwell ~22 min, so the stationary
		// busy fraction is (1/22)/(1/22+1/10) ≈ 0.3125 and the long-run
		// mean is 0.3125·3m + 0.6875·0.1m ≈ m.
		busyRate := 3 * cfg.MeanPerMinute
		quietRate := 0.1 * cfg.MeanPerMinute
		busy := rng.Float64() < 0.3125
		for i := range counts {
			if busy {
				counts[i] = float64(rng.Poisson(busyRate))
				if rng.Float64() < 1.0/10 {
					busy = false
				}
			} else {
				counts[i] = float64(rng.Poisson(quietRate))
				if rng.Float64() < 1.0/22 {
					busy = true
				}
			}
		}
	case Sporadic:
		// Rare intense bursts: ~3% of minutes busy at ~33x the mean;
		// otherwise silent.
		burstRate := cfg.MeanPerMinute / 0.03
		inBurst := false
		for i := range counts {
			if inBurst {
				counts[i] = float64(rng.Poisson(burstRate))
				if rng.Float64() < 1.0/5 { // bursts last ~5 minutes
					inBurst = false
				}
			} else if rng.Float64() < 0.03/5 {
				inBurst = true
				counts[i] = float64(rng.Poisson(burstRate))
			}
		}
	default:
		return Row{}, fmt.Errorf("azure: unknown archetype %v", cfg.Archetype)
	}
	return Row{
		OwnerHash:    fmt.Sprintf("owner-%08x", rng.Uint64()&0xffffffff),
		AppHash:      fmt.Sprintf("app-%08x", rng.Uint64()&0xffffffff),
		FunctionHash: fmt.Sprintf("func-%s-%08x", cfg.Archetype, rng.Uint64()&0xffffffff),
		Trigger:      triggerFor(cfg.Archetype),
		Counts:       counts,
	}, nil
}

func triggerFor(a Archetype) string {
	switch a {
	case Periodic:
		return "timer"
	case Sporadic:
		return "event"
	default:
		return "http"
	}
}

// FindActiveWindow returns the start minute of the length-window slice of
// counts with the largest total — how the Fig 9 harness picks an hour that
// actually contains the sporadic function's bursts, mirroring the paper's
// choice of the 11:00-12:00 sample from the full-day trace (§6.7).
func FindActiveWindow(counts []float64, window int) int {
	if window <= 0 || window >= len(counts) {
		return 0
	}
	var sum float64
	for _, c := range counts[:window] {
		sum += c
	}
	best, bestAt := sum, 0
	for i := window; i < len(counts); i++ {
		sum += counts[i] - counts[i-window]
		if sum > best {
			best, bestAt = sum, i-window+1
		}
	}
	return bestAt
}

// Stats summarizes a count vector, used to verify synthesized shapes.
type Stats struct {
	Mean       float64
	Max        float64
	NonZero    int     // minutes with any invocation
	CV         float64 // coefficient of variation
	P99        float64
	BusyShare  float64 // fraction of invocations in the busiest 5% of minutes
	TotalCount float64
}

// Summarize computes Stats for a count vector.
func Summarize(counts []float64) Stats {
	if len(counts) == 0 {
		return Stats{}
	}
	var st Stats
	for _, c := range counts {
		st.TotalCount += c
		if c > st.Max {
			st.Max = c
		}
		if c > 0 {
			st.NonZero++
		}
	}
	st.Mean = st.TotalCount / float64(len(counts))
	var ss float64
	for _, c := range counts {
		d := c - st.Mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(counts)))
	if st.Mean > 0 {
		st.CV = sd / st.Mean
	}
	sorted := append([]float64(nil), counts...)
	sort.Float64s(sorted)
	st.P99 = sorted[int(0.99*float64(len(sorted)-1))]
	top := len(sorted) / 20
	if top < 1 {
		top = 1
	}
	var topSum float64
	for _, c := range sorted[len(sorted)-top:] {
		topSum += c
	}
	if st.TotalCount > 0 {
		st.BusyShare = topSum / st.TotalCount
	}
	return st
}
