// Package metrics provides the measurement primitives used by the LaSS
// reproduction: exact-quantile reservoirs for waiting/response times,
// log-bucketed histograms for high-volume latency capture, time-weighted
// averages for utilization accounting, and time-series recorders for the
// allocation-over-time figures.
//
// The paper reports P95 waiting times (Figs 3, 4), cluster utilization
// percentages (Figs 8, 9), and container-allocation time series (Figs 6, 8,
// 9); each of those maps onto one primitive here.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Reservoir collects float64 samples and answers exact quantile queries.
// At the scales used in this repository (at most a few million samples per
// experiment) exact quantiles are affordable and remove any estimator error
// from the model-validation figures.
type Reservoir struct {
	samples []float64
	sorted  bool
	sum     float64
}

// NewReservoir returns an empty reservoir.
func NewReservoir() *Reservoir { return &Reservoir{} }

// Add records one sample.
func (r *Reservoir) Add(v float64) {
	r.samples = append(r.samples, v)
	r.sorted = false
	r.sum += v
}

// AddDuration records a duration sample in seconds.
func (r *Reservoir) AddDuration(d time.Duration) { r.Add(d.Seconds()) }

// Count returns the number of samples recorded.
func (r *Reservoir) Count() int { return len(r.samples) }

// Sum returns the sum of all samples.
func (r *Reservoir) Sum() float64 { return r.sum }

// Mean returns the sample mean, or 0 if empty.
func (r *Reservoir) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / float64(len(r.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics. It returns 0 for an empty reservoir.
func (r *Reservoir) Quantile(q float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return 0
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	if q <= 0 {
		return r.samples[0]
	}
	if q >= 1 {
		return r.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return r.samples[n-1]
	}
	frac := pos - float64(lo)
	return r.samples[lo]*(1-frac) + r.samples[hi]*frac
}

// Max returns the largest sample, or 0 if empty.
func (r *Reservoir) Max() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if r.sorted {
		return r.samples[len(r.samples)-1]
	}
	m := r.samples[0]
	for _, v := range r.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest sample, or 0 if empty.
func (r *Reservoir) Min() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if r.sorted {
		return r.samples[0]
	}
	m := r.samples[0]
	for _, v := range r.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// StdDev returns the sample standard deviation, or 0 for <2 samples.
func (r *Reservoir) StdDev() float64 {
	n := len(r.samples)
	if n < 2 {
		return 0
	}
	mean := r.Mean()
	var ss float64
	for _, v := range r.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// SCV returns the squared coefficient of variation (variance/mean^2), the
// input the Allen-Cunneen G/G/c approximation needs. Returns 0 for <2
// samples or zero mean.
func (r *Reservoir) SCV() float64 {
	mean := r.Mean()
	if mean == 0 || len(r.samples) < 2 {
		return 0
	}
	sd := r.StdDev()
	return (sd * sd) / (mean * mean)
}

// FractionBelow returns the fraction of samples <= limit.
func (r *Reservoir) FractionBelow(limit float64) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	// Upper bound: first index with sample > limit.
	idx := sort.SearchFloat64s(r.samples, math.Nextafter(limit, math.Inf(1)))
	return float64(idx) / float64(len(r.samples))
}

// Reset discards all samples.
func (r *Reservoir) Reset() {
	r.samples = r.samples[:0]
	r.sorted = false
	r.sum = 0
}

// Histogram is a log-bucketed latency histogram with bounded relative error,
// suitable for high-volume capture on the real-time data path where keeping
// every sample would be wasteful. Buckets grow geometrically from min to max.
type Histogram struct {
	min     float64
	growth  float64
	counts  []uint64
	total   uint64
	sum     float64
	underf  uint64
	overf   uint64
	maxSeen float64
}

// NewHistogram returns a histogram covering [min, max] with the given number
// of geometric buckets. Typical latency use: NewHistogram(1e-6, 100, 256)
// for 1 microsecond to 100 seconds with ~7% relative bucket width.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if min <= 0 || max <= min || buckets < 1 {
		panic("metrics: invalid histogram parameters")
	}
	return &Histogram{
		min:    min,
		growth: math.Pow(max/min, 1/float64(buckets)),
		counts: make([]uint64, buckets),
	}
}

func (h *Histogram) bucketOf(v float64) int {
	if v < h.min {
		return -1
	}
	b := int(math.Log(v/h.min) / math.Log(h.growth))
	if b >= len(h.counts) {
		return len(h.counts)
	}
	return b
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.total++
	h.sum += v
	if v > h.maxSeen {
		h.maxSeen = v
	}
	switch b := h.bucketOf(v); {
	case b < 0:
		h.underf++
	case b >= len(h.counts):
		h.overf++
	default:
		h.counts[b]++
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact sample mean (tracked outside the buckets).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns an approximate q-quantile using the geometric midpoint of
// the containing bucket. Underflow samples report as min; overflow as the
// maximum observed value.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64 = h.underf
	if cum >= target {
		return h.min
	}
	lo := h.min
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			hiEdge := h.min * math.Pow(h.growth, float64(i+1))
			loEdge := h.min * math.Pow(h.growth, float64(i))
			return math.Sqrt(hiEdge * loEdge)
		}
		_ = lo
	}
	return h.maxSeen
}

// TimeWeightedAverage integrates a piecewise-constant signal over time and
// reports its time-weighted mean: exactly how the paper computes "system
// utilization" over an experiment (Figs 8, 9).
type TimeWeightedAverage struct {
	last     time.Duration
	value    float64
	integral float64
	started  bool
	start    time.Duration
}

// NewTimeWeightedAverage returns an integrator starting at time 0, value 0.
func NewTimeWeightedAverage() *TimeWeightedAverage { return &TimeWeightedAverage{} }

// Set records that the signal changed to v at time now. Calls must be
// monotone in now.
func (a *TimeWeightedAverage) Set(now time.Duration, v float64) {
	if !a.started {
		a.started = true
		a.start = now
		a.last = now
		a.value = v
		return
	}
	if now < a.last {
		panic(fmt.Sprintf("metrics: time went backwards: %v < %v", now, a.last))
	}
	a.integral += a.value * (now - a.last).Seconds()
	a.last = now
	a.value = v
}

// Mean returns the time-weighted mean of the signal over [start, now].
func (a *TimeWeightedAverage) Mean(now time.Duration) float64 {
	if !a.started || now <= a.start {
		return 0
	}
	integral := a.integral
	if now > a.last {
		integral += a.value * (now - a.last).Seconds()
	}
	return integral / (now - a.start).Seconds()
}

// Value returns the current value of the signal.
func (a *TimeWeightedAverage) Value() float64 { return a.value }

// Point is one (time, value) sample of a recorded series.
type Point struct {
	T time.Duration
	V float64
}

// Series records a named time series, used to reproduce the
// allocation-over-time and workload-over-time plots (Figs 6, 8, 9).
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a point. Points are expected in time order.
func (s *Series) Record(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Last returns the most recent value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// ValueAt returns the value of the series at time t, treating the series as
// a right-continuous step function. Returns 0 before the first point.
func (s *Series) ValueAt(t time.Duration) float64 {
	idx := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if idx == 0 {
		return 0
	}
	return s.Points[idx-1].V
}

// Max returns the maximum recorded value, or 0 if empty.
func (s *Series) Max() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// SLOTracker counts requests against a latency target, reporting attainment
// the way the paper states SLOs: "a high percentile of requests complete by
// the deadline".
type SLOTracker struct {
	Deadline time.Duration
	total    uint64
	violated uint64
}

// NewSLOTracker returns a tracker for the given deadline.
func NewSLOTracker(deadline time.Duration) *SLOTracker {
	return &SLOTracker{Deadline: deadline}
}

// Observe records one request's latency.
func (t *SLOTracker) Observe(latency time.Duration) {
	t.total++
	if latency > t.Deadline {
		t.violated++
	}
}

// Total returns the number of observed requests.
func (t *SLOTracker) Total() uint64 { return t.total }

// Violations returns the number of requests exceeding the deadline.
func (t *SLOTracker) Violations() uint64 { return t.violated }

// Attainment returns the fraction of requests meeting the deadline
// (1.0 when no requests were observed, i.e. an SLO with no traffic holds).
func (t *SLOTracker) Attainment() float64 {
	if t.total == 0 {
		return 1
	}
	return 1 - float64(t.violated)/float64(t.total)
}
