package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"lass/internal/xrand"
)

func TestReservoirBasics(t *testing.T) {
	r := NewReservoir()
	if r.Count() != 0 || r.Mean() != 0 || r.Quantile(0.5) != 0 {
		t.Error("empty reservoir should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		r.Add(v)
	}
	if r.Count() != 5 {
		t.Errorf("count=%d", r.Count())
	}
	if r.Mean() != 3 {
		t.Errorf("mean=%v", r.Mean())
	}
	if r.Min() != 1 || r.Max() != 5 {
		t.Errorf("min=%v max=%v", r.Min(), r.Max())
	}
	if q := r.Quantile(0.5); q != 3 {
		t.Errorf("median=%v", q)
	}
	if q := r.Quantile(0); q != 1 {
		t.Errorf("q0=%v", q)
	}
	if q := r.Quantile(1); q != 5 {
		t.Errorf("q1=%v", q)
	}
}

func TestReservoirQuantileInterpolation(t *testing.T) {
	r := NewReservoir()
	r.Add(0)
	r.Add(10)
	if q := r.Quantile(0.5); q != 5 {
		t.Errorf("interpolated median=%v want 5", q)
	}
	if q := r.Quantile(0.25); q != 2.5 {
		t.Errorf("q25=%v want 2.5", q)
	}
}

func TestReservoirFractionBelow(t *testing.T) {
	r := NewReservoir()
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if f := r.FractionBelow(50); f != 0.5 {
		t.Errorf("FractionBelow(50)=%v", f)
	}
	if f := r.FractionBelow(100); f != 1 {
		t.Errorf("FractionBelow(100)=%v", f)
	}
	if f := r.FractionBelow(0.5); f != 0 {
		t.Errorf("FractionBelow(0.5)=%v", f)
	}
}

func TestReservoirAddAfterQuantile(t *testing.T) {
	// Adding after a quantile query must keep results correct (re-sort).
	r := NewReservoir()
	r.Add(1)
	r.Add(3)
	_ = r.Quantile(0.5)
	r.Add(2)
	if q := r.Quantile(0.5); q != 2 {
		t.Errorf("median after insert=%v", q)
	}
}

func TestReservoirStdDevAndSCV(t *testing.T) {
	r := NewReservoir()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	// Known dataset: mean 5, sample stddev ~2.138.
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean=%v", r.Mean())
	}
	if math.Abs(r.StdDev()-2.13809) > 1e-4 {
		t.Errorf("stddev=%v", r.StdDev())
	}
	wantSCV := (r.StdDev() * r.StdDev()) / 25
	if math.Abs(r.SCV()-wantSCV) > 1e-12 {
		t.Errorf("scv=%v want %v", r.SCV(), wantSCV)
	}
	empty := NewReservoir()
	if empty.StdDev() != 0 || empty.SCV() != 0 {
		t.Error("empty stddev/scv should be 0")
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir()
	r.Add(5)
	r.Reset()
	if r.Count() != 0 || r.Sum() != 0 {
		t.Error("reset did not clear")
	}
}

func TestReservoirDuration(t *testing.T) {
	r := NewReservoir()
	r.AddDuration(250 * time.Millisecond)
	if r.Mean() != 0.25 {
		t.Errorf("mean=%v", r.Mean())
	}
}

func TestQuickReservoirQuantileMatchesSort(t *testing.T) {
	rng := xrand.New(11)
	f := func(n uint8, qRaw uint8) bool {
		size := int(n%50) + 1
		q := float64(qRaw) / 255
		r := NewReservoir()
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = rng.Float64() * 100
			r.Add(vals[i])
		}
		sort.Float64s(vals)
		pos := q * float64(size-1)
		lo := int(math.Floor(pos))
		hi := lo + 1
		var want float64
		if hi >= size {
			want = vals[size-1]
		} else {
			frac := pos - float64(lo)
			want = vals[lo]*(1-frac) + vals[hi]*frac
		}
		return math.Abs(r.Quantile(q)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(1e-6, 100, 512)
	rng := xrand.New(21)
	exact := NewReservoir()
	for i := 0; i < 100000; i++ {
		v := rng.Exp(10) // mean 0.1s
		h.Add(v)
		exact.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		hq := h.Quantile(q)
		eq := exact.Quantile(q)
		if math.Abs(hq-eq)/eq > 0.05 {
			t.Errorf("q=%v: hist=%v exact=%v", q, hq, eq)
		}
	}
	if math.Abs(h.Mean()-exact.Mean()) > 1e-9 {
		t.Errorf("hist mean=%v exact=%v", h.Mean(), exact.Mean())
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(0.001, 1, 16)
	h.Add(0.0001) // underflow
	h.Add(100)    // overflow
	if h.Count() != 2 {
		t.Errorf("count=%d", h.Count())
	}
	if q := h.Quantile(0.01); q != 0.001 {
		t.Errorf("underflow quantile=%v want min", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("overflow quantile=%v want max seen", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0.001, 1, 16)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewHistogram(0, 1, 16)
}

func TestTimeWeightedAverage(t *testing.T) {
	a := NewTimeWeightedAverage()
	a.Set(0, 1.0)
	a.Set(10*time.Second, 0.0)
	// 1.0 for 10s then 0 for 10s -> mean 0.5 at t=20s.
	if m := a.Mean(20 * time.Second); math.Abs(m-0.5) > 1e-12 {
		t.Errorf("mean=%v want 0.5", m)
	}
	if a.Value() != 0 {
		t.Errorf("value=%v", a.Value())
	}
}

func TestTimeWeightedAverageLateStart(t *testing.T) {
	a := NewTimeWeightedAverage()
	a.Set(10*time.Second, 2.0)
	// Window starts at first Set; 2.0 held for 10s.
	if m := a.Mean(20 * time.Second); math.Abs(m-2) > 1e-12 {
		t.Errorf("mean=%v want 2", m)
	}
	if m := a.Mean(5 * time.Second); m != 0 {
		t.Errorf("mean before start=%v want 0", m)
	}
}

func TestTimeWeightedAverageBackwardsPanics(t *testing.T) {
	a := NewTimeWeightedAverage()
	a.Set(10*time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("want panic on time going backwards")
		}
	}()
	a.Set(5*time.Second, 2)
}

func TestSeries(t *testing.T) {
	s := NewSeries("alloc")
	if s.Last() != 0 || s.ValueAt(time.Second) != 0 || s.Max() != 0 {
		t.Error("empty series should report zeros")
	}
	s.Record(0, 1)
	s.Record(10*time.Second, 3)
	s.Record(20*time.Second, 2)
	if s.Last() != 2 {
		t.Errorf("last=%v", s.Last())
	}
	if v := s.ValueAt(15 * time.Second); v != 3 {
		t.Errorf("ValueAt(15s)=%v", v)
	}
	if v := s.ValueAt(10 * time.Second); v != 3 {
		t.Errorf("ValueAt(10s)=%v (right-continuous)", v)
	}
	if v := s.ValueAt(25 * time.Second); v != 2 {
		t.Errorf("ValueAt(25s)=%v", v)
	}
	if s.Max() != 3 {
		t.Errorf("max=%v", s.Max())
	}
}

func TestSLOTracker(t *testing.T) {
	tr := NewSLOTracker(100 * time.Millisecond)
	if tr.Attainment() != 1 {
		t.Error("no-traffic attainment should be 1")
	}
	for i := 0; i < 95; i++ {
		tr.Observe(50 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		tr.Observe(200 * time.Millisecond)
	}
	if tr.Total() != 100 || tr.Violations() != 5 {
		t.Errorf("total=%d violations=%d", tr.Total(), tr.Violations())
	}
	if math.Abs(tr.Attainment()-0.95) > 1e-12 {
		t.Errorf("attainment=%v", tr.Attainment())
	}
	// Boundary: exactly the deadline is a pass.
	tr2 := NewSLOTracker(100 * time.Millisecond)
	tr2.Observe(100 * time.Millisecond)
	if tr2.Violations() != 0 {
		t.Error("deadline-exact latency should not violate")
	}
}
