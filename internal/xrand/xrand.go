// Package xrand provides a small, deterministic random number generator and
// the distribution samplers used throughout the LaSS reproduction.
//
// Every stochastic component in the repository (arrival processes, service
// time distributions, trace synthesis, random deflation experiments) draws
// from an explicitly seeded *Rand so that experiments are reproducible
// bit-for-bit across runs and platforms. The generator is splitmix64, which
// is tiny, fast, and passes BigCrush when used as a 64-bit stream.
package xrand

import "math"

// Rand is a deterministic pseudo-random source based on splitmix64.
// It is intentionally not safe for concurrent use; give each concurrent
// component its own Rand via Split or Fork.
type Rand struct {
	state uint64
}

// New returns a Rand seeded with the given seed. Two Rands created with the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent generator from r. The derived stream is
// decorrelated from the parent by mixing a fresh output with a distinct
// constant, so components can be given private sub-streams without
// coordinating seed assignment.
func (r *Rand) Fork() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with n <= 0")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(math.MaxUint64) - uint64(math.MaxUint64)%uint64(n)
	v := r.Uint64()
	for v >= max {
		v = r.Uint64()
	}
	return int64(v % uint64(n))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	return int(r.Int63n(int64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp with rate <= 0")
	}
	// Inverse transform; guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed sample where the underlying
// normal has parameters mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Poisson returns a Poisson-distributed sample with the given mean.
// For small means it uses Knuth's product method; for large means a
// normal approximation with continuity correction, which is accurate to
// well under a percent for mean >= 30 and avoids O(mean) time.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := r.Norm(mean, math.Sqrt(mean))
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
