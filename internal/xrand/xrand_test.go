package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a2 := New(42)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestForkDecorrelates(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("fork produced %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(2)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Uniform(2, 4)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.01 {
		t.Errorf("uniform(2,4) mean %v", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(3)
	for _, rate := range []float64{0.5, 1, 10} {
		sum := 0.0
		n := 200000
		for i := 0; i < n; i++ {
			sum += r.Exp(rate)
		}
		mean := sum / float64(n)
		if math.Abs(mean-1/rate) > 0.02/rate {
			t.Errorf("exp(%v) mean %v want %v", rate, mean, 1/rate)
		}
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(1).Exp(0)
}

func TestNormMoments(t *testing.T) {
	r := New(4)
	n := 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean-5) > 0.02 {
		t.Errorf("norm mean %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.03 {
		t.Errorf("norm stddev %v", math.Sqrt(variance))
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(5)
	n := 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(1, 0.5)
	}
	// Median of lognormal is exp(mu); test via counting below exp(1).
	below := 0
	for _, v := range vals {
		if v < math.E {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below median %v", frac)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(6)
	for _, mean := range []float64{0.5, 3, 12, 80, 400} {
		sum := 0
		n := 50000
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.03*mean+0.05 {
			t.Errorf("poisson(%v) mean %v", mean, got)
		}
	}
	if v := r.Poisson(0); v != 0 {
		t.Errorf("poisson(0) = %d", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Errorf("poisson(-1) = %d", v)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d count %d not ~10000", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(9)
	s := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 28 {
		t.Errorf("elements changed: %v", s)
	}
}
