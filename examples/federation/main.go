// Edge–cloud federation with dynamic offload. Three small edge sites run
// SqueezeNet behind the LaSS controller on a star topology (edge-0 is the
// hub); the middle of the run slams site edge-0 with three times its
// capacity. The example runs the same scenario under every registered
// placement policy — the never single-cluster baseline, cloud-only,
// nearest-peer, model-driven, grant-aware, and cost-bounded, each resolved
// by name from the placer registry — and prints where each site's
// requests were served, the cloud cold starts and dollars each policy
// paid, and the end-to-end SLO violation rate, network RTT included.
// Registering a custom lass.Placer before the loop would add it to the
// comparison automatically. A closing section reruns the scenario under
// the federation-wide fair-share allocator with an elected,
// failure-prone coordinator: RTT-centroid election, a mid-run outage
// window, and grant leases versus the frozen-grants legacy.
package main

import (
	"fmt"
	"log"
	"time"

	"lass"
)

func sites() ([]lass.SimulationConfig, error) {
	spec, err := lass.FunctionByName("squeezenet")
	if err != nil {
		return nil, err
	}
	// One 4-core node per site: ~40 req/s of SqueezeNet capacity.
	edge := lass.ClusterConfig{Nodes: 1, CPUPerNode: 4000, MemPerNode: 8192}
	hot, err := lass.StepWorkload([]lass.WorkloadStep{
		{Start: 0, Rate: 20},
		{Start: 3 * time.Minute, Rate: 120}, // 3x overload
		{Start: 6 * time.Minute, Rate: 20},
	})
	if err != nil {
		return nil, err
	}
	var cfgs []lass.SimulationConfig
	for i := 0; i < 3; i++ {
		wl := hot
		if i > 0 {
			if wl, err = lass.StaticWorkload(10); err != nil {
				return nil, err
			}
		}
		cfgs = append(cfgs, lass.SimulationConfig{
			Cluster:    edge,
			Controller: lass.ControllerConfig{MinContainers: 1},
			Seed:       uint64(100 + i),
			Functions:  []lass.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
		})
	}
	return cfgs, nil
}

func main() {
	fmt.Printf("%-14s %-8s %8s %8s %8s %9s %6s %10s %11s\n",
		"policy", "site", "local", "to-peer", "to-cloud", "peer-in", "cold", "cost-$", "violations")
	for _, name := range lass.PlacerNames() {
		placer, err := lass.PlacerByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfgs, err := sites()
		if err != nil {
			log.Fatal(err)
		}
		// Hub-and-spoke: the hot site edge-0 is 3 ms from each peer; the
		// peers reach each other through it at 6 ms.
		topo, err := lass.StarTopology(len(cfgs), 3*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fed, err := lass.NewFederation(lass.FederationConfig{
			Sites:    cfgs,
			Placer:   placer,
			Topology: topo,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := fed.Run(9 * time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range res.Sites {
			// ViolationRate counts requests still backlogged at run end as
			// misses, so the never policy's stranded burst isn't flattered.
			fmt.Printf("%-14s %-8s %8d %8d %8d %9d %6d %10.6f %10.1f%%\n",
				res.Placer, s.Name, s.ServedLocal, s.OffloadedPeer, s.OffloadedCloud,
				s.PeerServed, s.CloudColdStarts, s.CloudCost, 100*s.ViolationRate())
		}
	}
	coordinatorDemo()
}

// coordinatorDemo reruns the scenario under the federation-wide §4.1
// allocator with the coordinator treated as a first-class, failure-prone
// role: RTT-centroid election seats it at the best-connected site (the
// hub, here), a mid-run outage window takes it dark across the burst, and
// the default grant lease (2× the allocation epoch) lets every site fall
// back to local enforcement instead of freezing on its stale pre-burst
// grants. The federation-coordinator experiment (lass-sim -federation
// -fed-coordinator) runs the stressed version of this comparison — an
// asymmetric star with a throttled cloud — where lease fallback measurably
// cuts the outage-window violation spike versus frozen grants.
func coordinatorDemo() {
	fmt.Printf("\nglobal fair share with an elected, failure-prone coordinator:\n")
	fmt.Printf("%-22s %-12s %8s %8s %10s %12s %11s\n",
		"variant", "coordinator", "epochs", "missed", "lease-exp", "grant-delay", "violations")
	run := func(label string, election lass.CoordinatorElection, outages []lass.OutageWindow, lease time.Duration) {
		cfgs, err := sites()
		if err != nil {
			log.Fatal(err)
		}
		topo, err := lass.StarTopology(len(cfgs), 3*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		placer, err := lass.PlacerByName("model-driven")
		if err != nil {
			log.Fatal(err)
		}
		fed, err := lass.NewFederation(lass.FederationConfig{
			Sites:               cfgs,
			Placer:              placer,
			Topology:            topo,
			GlobalFairShare:     true,
			CoordinatorElection: election,
			CoordinatorOutages:  outages,
			GrantLease:          lease,
			Seed:                1,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := fed.Run(9 * time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		var violated, total uint64
		for _, s := range res.Sites {
			violated += s.Violations()
			total += s.SLO.Total() + s.Unresolved
		}
		fmt.Printf("%-22s %-12s %8d %8d %10d %12v %10.1f%%\n",
			label, fmt.Sprintf("%s@%d", res.Election, res.Coordinator),
			res.AllocEpochs, res.MissedAllocEpochs, res.GrantLeaseExpirations,
			res.MeanGrantDelay, 100*float64(violated)/float64(total))
	}
	// The burst hits edge-0 during minutes 3-6; the outage covers it.
	outage := []lass.OutageWindow{{Start: 150 * time.Second, End: 6 * time.Minute}}
	run("centroid, healthy", lass.CoordinatorRTTCentroid, nil, 0)
	run("centroid, outage", lass.CoordinatorRTTCentroid, outage, 0)
	run("outage, frozen grants", lass.CoordinatorRTTCentroid, outage, -1)
}
