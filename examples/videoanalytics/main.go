// Video analytics at the edge: the paper's motivating example (§1,
// Example 1). A motion-activated smart camera produces bursts of frames;
// each frame is one invocation of a DNN inference function (MobileNet v2).
// LaSS scales the container pool up within the burst and back down after
// it, keeping inference latency inside the SLO without statically
// provisioning for the peak.
package main

import (
	"fmt"
	"log"
	"time"

	"lass"
)

func main() {
	mobilenet, err := lass.FunctionByName("mobilenet-v2")
	if err != nil {
		log.Fatal(err)
	}
	// Inference must start within 250 ms of frame arrival for alerts to
	// be "near real-time".
	slo := lass.SLO{Deadline: 250 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}

	// The camera: idle, then three motion events of increasing intensity
	// (frames/s), each a few minutes long, with quiet gaps between.
	camera, err := lass.StepWorkload([]lass.WorkloadStep{
		{Start: 0, Rate: 0.5},                // background: periodic keep-alive frames
		{Start: 3 * time.Minute, Rate: 8},    // motion event 1
		{Start: 6 * time.Minute, Rate: 0.5},  // quiet
		{Start: 9 * time.Minute, Rate: 16},   // motion event 2 (busy scene)
		{Start: 13 * time.Minute, Rate: 0.5}, // quiet
		{Start: 16 * time.Minute, Rate: 10},  // motion event 3
		{Start: 19 * time.Minute, Rate: 0.5},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A GeoFence function shares the edge cluster (drones reporting
	// positions) — steady light load, unaffected by the camera bursts.
	geofence, err := lass.FunctionByName("geofence")
	if err != nil {
		log.Fatal(err)
	}
	drones, err := lass.StaticWorkload(50)
	if err != nil {
		log.Fatal(err)
	}

	ctl := lass.DefaultController()
	ctl.MinContainers = 1
	sim, err := lass.NewSimulation(lass.SimulationConfig{
		Cluster:    lass.ClusterConfig{Nodes: 5, CPUPerNode: 4000, MemPerNode: 16384},
		Controller: ctl,
		Seed:       7,
		Functions: []lass.FunctionConfig{
			{Spec: mobilenet, SLO: slo, Workload: camera, Prewarm: 1},
			{Spec: geofence, Workload: drones, Prewarm: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(22 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	inf := res.Functions[mobilenet.Name]
	fmt.Println("t(min)  frames/s  containers   (MobileNet v2 inference pool)")
	for m := 0; m <= 21; m++ {
		ts := time.Duration(m)*time.Minute + 30*time.Second
		bar := ""
		for i := 0; i < int(inf.Containers.ValueAt(ts)); i++ {
			bar += "#"
		}
		fmt.Printf("%5d %9.1f %11.0f   %s\n", m, camera.RateAt(ts), inf.Containers.ValueAt(ts), bar)
	}
	fmt.Printf("\ninference: %d frames, P95 wait %.0f ms, SLO attainment %.3f\n",
		inf.Completed, inf.Waits.Quantile(0.95)*1000, inf.SLO.Attainment())
	gf := res.Functions[geofence.Name]
	fmt.Printf("geofence : %d checks, P95 wait %.1f ms, SLO attainment %.3f (isolated from bursts)\n",
		gf.Completed, gf.Waits.Quantile(0.95)*1000, gf.SLO.Attainment())
}
