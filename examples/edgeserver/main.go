// Edge server in real time: the same LaSS controller that drives the
// simulations autoscaling actual goroutine worker pools against the wall
// clock. The example registers an image-classification-like handler,
// pushes a two-phase load through it (quiet, then a burst), and prints how
// the pool and the tail latency respond. Everything runs in-process; no
// network is involved (see cmd/lass-server for the HTTP front end).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"lass"

	"lass/internal/cluster"
	"lass/internal/controller"
)

//lass:wallclock interactive demo of the real-time platform.
func main() {
	platform, err := lass.NewRealtime(lass.RealtimeConfig{
		Cluster: cluster.Config{Nodes: 3, CPUPerNode: 4000, MemPerNode: 16384, Policy: cluster.WorstFit},
		Controller: controller.Config{
			// Faster epochs than the paper's 5s so the demo reacts within
			// seconds of wall-clock time.
			EvalInterval:  500 * time.Millisecond,
			Windows:       controller.DualWindowConfig{Short: 2 * time.Second, Long: 20 * time.Second, BurstFactor: 2},
			MinContainers: 1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Stop()

	// A "classifier": 20 ms of emulated inference per call, stretched if
	// its container has been CPU-deflated.
	spec := lass.MicroBenchmark(20 * time.Millisecond)
	spec.ColdStart = 100 * time.Millisecond
	classify := func(ctx context.Context, payload []byte) ([]byte, error) {
		work := time.Duration(float64(20*time.Millisecond) * spec.ServiceTimeMultiplier(lass.HandlerCPUFraction(ctx)))
		select {
		case <-time.After(work):
			return []byte("label:cat"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	slo := lass.SLO{Deadline: 50 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	if err := platform.Register(spec, classify, slo); err != nil {
		log.Fatal(err)
	}
	if err := platform.Provision(spec.Name, 1); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the first container warm up

	var wg sync.WaitGroup
	invoke := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if _, err := platform.Invoke(ctx, spec.Name, nil); err != nil {
				log.Printf("invoke: %v", err)
			}
		}()
	}

	report := func(phase string) {
		st, err := platform.Stats(spec.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s rate-estimate %5.1f req/s  desired %d  pool %d  P95 wait %6.1f ms  SLO %.3f\n",
			phase, st.LambdaHat, st.Desired, st.Containers,
			float64(st.P95Wait)/float64(time.Millisecond), st.Attainment)
	}

	// Phase 1: quiet — 10 req/s for 4 seconds.
	for i := 0; i < 40; i++ {
		invoke()
		time.Sleep(100 * time.Millisecond)
	}
	report("quiet")

	// Phase 2: burst — ~70 req/s for 6 seconds. One 20 ms-per-call worker
	// saturates at 50 req/s; the controller must grow the pool within a
	// couple of epochs.
	deadline := time.Now().Add(6 * time.Second)
	for time.Now().Before(deadline) {
		invoke()
		time.Sleep(14 * time.Millisecond)
	}
	report("burst")

	// Phase 3: quiet again; the pool drains back down.
	time.Sleep(time.Second)
	for i := 0; i < 40; i++ {
		invoke()
		time.Sleep(100 * time.Millisecond)
	}
	time.Sleep(2 * time.Second)
	report("cooldown")

	wg.Wait()
	fmt.Printf("cluster utilization now: %.1f%%\n", platform.Utilization())
}
