// Multi-tenant edge cluster on Azure-style traces: the paper's §6.7
// experiment. Two users share the cluster — user2 paying for twice
// user1's weight — each running three functions driven by synthesized
// traces in the Azure Functions 2019 per-minute schema. MobileNet follows
// the dataset's "highly sporadic" pattern: long silence, then intense
// bursts that force overload and fair-share reclamation.
package main

import (
	"fmt"
	"log"
	"time"

	"lass"
)

type tenant struct {
	fn        string
	user      string
	archetype lass.TraceArchetype
	perMinute float64
}

func main() {
	// Means are invocations/minute; the archetypes concentrate volume
	// (Sporadic packs its mean into ~3% of minutes, so 18/min means
	// ~10 req/s bursts; Periodic spikes at ~5 req/s on 25/min).
	members := []tenant{
		{"shufflenet-v2", "user1", lass.TraceSteady, 6 * 60},
		{"geofence", "user1", lass.TraceBursty, 2 * 60},
		{"image-resizer", "user1", lass.TraceSteady, 15 * 60},
		{"mobilenet-v2", "user2", lass.TraceSporadic, 18},
		{"squeezenet", "user2", lass.TraceSteady, 10 * 60},
		{"binaryalert", "user2", lass.TracePeriodic, 25},
	}
	const minutes = 60

	// Synthesize full 24h traces, then — like the paper sampling the
	// 11:00-12:00 hour — run the hour where MobileNet's sporadic trace is
	// actually bursting.
	rows := map[string]lass.TraceRow{}
	for i, m := range members {
		row, err := lass.SynthesizeTrace(uint64(100+i), m.archetype, m.perMinute, 1440)
		if err != nil {
			log.Fatal(err)
		}
		rows[m.fn] = row
	}
	start := lass.FindActiveTraceWindow(rows["mobilenet-v2"].Counts, minutes)
	fmt.Printf("sampling trace minutes %d-%d (busiest MobileNet hour)\n\n", start, start+minutes)

	var fcs []lass.FunctionConfig
	for _, m := range members {
		wl, err := lass.TraceWorkload(rows[m.fn].Window(start, start+minutes))
		if err != nil {
			log.Fatal(err)
		}
		spec, err := lass.FunctionByName(m.fn)
		if err != nil {
			log.Fatal(err)
		}
		fcs = append(fcs, lass.FunctionConfig{
			Spec: spec, User: m.user, Weight: 1, Workload: wl, Prewarm: 1,
		})
	}

	ctl := lass.DefaultController()
	ctl.Policy = lass.Deflation
	ctl.MinContainers = 1
	sim, err := lass.NewSimulation(lass.SimulationConfig{
		Cluster:    lass.PaperCluster(),
		Controller: ctl,
		Seed:       21,
		Users:      map[string]float64{"user1": 1, "user2": 2},
		Functions:  fcs,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(minutes * time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-15s %-6s %10s %12s %10s %9s\n",
		"function", "user", "completed", "P95 wait", "SLO att", "mean mC")
	var userCPU [2]float64
	for i, m := range members {
		fr := res.Functions[m.fn]
		var sum float64
		for _, p := range fr.CPU.Points {
			sum += p.V
		}
		mean := sum / float64(len(fr.CPU.Points))
		if m.user == "user1" {
			userCPU[0] += mean
		} else {
			userCPU[1] += mean
		}
		fmt.Printf("%-15s %-6s %10d %11.1fms %10.3f %9.0f\n",
			m.fn, m.user, fr.Completed, fr.Waits.Quantile(0.95)*1000,
			fr.SLO.Attainment(), mean)
		_ = i
	}
	fmt.Printf("\nmean CPU by user: user1 %.0f mC, user2 %.0f mC (weights 1:2; overload shares follow weights)\n",
		userCPU[0], userCPU[1])
	fmt.Printf("cluster utilization %.1f%%, overload epochs %d, deflations %d\n",
		res.Utilization*100, res.ControllerOps.Overloads, res.ControllerOps.Deflations)
}
