// Quickstart: size a function with the queueing model, run it on a
// simulated edge cluster, and check the measured tail latency against the
// SLO — the core LaSS loop in ~60 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"lass"
)

func main() {
	// A CPU-bound function with a 100 ms mean service time (μ = 10 req/s
	// per container) and the evaluation's default SLO: 95% of requests
	// must start service within 100 ms.
	spec := lass.MicroBenchmark(100 * time.Millisecond)
	slo := lass.DefaultSLO()

	// Ask the model (paper Algorithm 1) how many containers 30 req/s needs.
	c, err := lass.RequiredContainers(30, spec.ServiceRate(), slo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d containers for 30 req/s at mu=%.0f, SLO %v@p%.0f\n",
		c, spec.ServiceRate(), slo.Deadline, slo.Percentile*100)

	// Run the full platform — cluster, WRR data path, autoscaling
	// controller — against a 30 req/s Poisson workload.
	wl, err := lass.StaticWorkload(30)
	if err != nil {
		log.Fatal(err)
	}
	simulation, err := lass.NewSimulation(lass.SimulationConfig{
		Cluster: lass.PaperCluster(), // 3 nodes x 4 cores (paper §6.1)
		Seed:    1,
		Functions: []lass.FunctionConfig{{
			Spec:     spec,
			SLO:      slo,
			Workload: wl,
			Prewarm:  1, // one warm container at t=0; the controller grows the rest
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := simulation.Run(10 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fr := res.Functions[spec.Name]
	fmt.Printf("simulated 10m: %d arrivals, %d completed\n", fr.Arrivals, fr.Completed)
	fmt.Printf("P50/P95/P99 wait: %.1f / %.1f / %.1f ms\n",
		fr.Waits.Quantile(0.50)*1000, fr.Waits.Quantile(0.95)*1000, fr.Waits.Quantile(0.99)*1000)
	fmt.Printf("SLO attainment: %.3f (deadline %v)\n", fr.SLO.Attainment(), slo.Deadline)
	fmt.Printf("final allocation: %.0f containers (model said %d)\n", fr.Containers.Last(), c)
	fmt.Printf("cluster utilization: %.1f%%\n", res.Utilization*100)
}
