// Overload and fair shares: the paper's Fig 8 scenario. A malware
// detector (BinaryAlert) and a DNN (MobileNet v2) share a 3-node edge
// cluster with equal weights. When their combined demand exceeds the
// cluster, LaSS guarantees each function its weighted fair share,
// reclaiming resources by container termination or — keeping strictly
// more capacity in play — by CPU deflation. The example runs the same
// scenario under both policies and prints the comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"lass"
)

func run(policy lass.ReclamationPolicy) (*lass.Result, error) {
	malware, err := lass.FunctionByName("binaryalert")
	if err != nil {
		return nil, err
	}
	dnn, err := lass.FunctionByName("mobilenet-v2")
	if err != nil {
		return nil, err
	}
	// Phases (paper Fig 8a): malware alone; DNN burst at t=5; malware
	// rises at t=10 (overload) and again at t=15 (both over fair share);
	// DNN ceases at t=20.
	malwareWL, err := lass.StepWorkload([]lass.WorkloadStep{
		{Start: 0, Rate: 60},
		{Start: 10 * time.Minute, Rate: 80},
		{Start: 15 * time.Minute, Rate: 300},
	})
	if err != nil {
		return nil, err
	}
	dnnWL, err := lass.StepWorkload([]lass.WorkloadStep{
		{Start: 0, Rate: 0},
		{Start: 5 * time.Minute, Rate: 16},
		{Start: 20 * time.Minute, Rate: 0},
	})
	if err != nil {
		return nil, err
	}
	ctl := lass.DefaultController()
	ctl.Policy = policy
	sim, err := lass.NewSimulation(lass.SimulationConfig{
		Cluster:    lass.PaperCluster(),
		Controller: ctl,
		Seed:       11,
		Functions: []lass.FunctionConfig{
			{Spec: malware, Workload: malwareWL, Weight: 1},
			{Spec: dnn, Workload: dnnWL, Weight: 1},
		},
	})
	if err != nil {
		return nil, err
	}
	return sim.Run(25 * time.Minute)
}

func main() {
	results := map[lass.ReclamationPolicy]*lass.Result{}
	for _, policy := range []lass.ReclamationPolicy{lass.Termination, lass.Deflation} {
		res, err := run(policy)
		if err != nil {
			log.Fatal(err)
		}
		results[policy] = res

		fmt.Printf("--- policy: %v ---\n", policy)
		fmt.Println("t(min)  binaryalert(mC)  mobilenet(mC)  cluster-util")
		for _, m := range []int{2, 7, 12, 17, 22} {
			ts := time.Duration(m) * time.Minute
			fmt.Printf("%5d %16.0f %14.0f %13.1f%%\n",
				m,
				res.Functions["binaryalert"].CPU.ValueAt(ts),
				res.Functions["mobilenet-v2"].CPU.ValueAt(ts),
				res.UtilizationTS.ValueAt(ts)*100)
		}
		fmt.Printf("mean utilization: %.1f%%   container ops: %d created, %d terminated, %d deflated\n\n",
			res.Utilization*100,
			res.ControllerOps.Creations, res.ControllerOps.Terminations, res.ControllerOps.Deflations)
	}

	t := results[lass.Termination]
	d := results[lass.Deflation]
	fmt.Printf("deflation vs termination utilization: %.1f%% vs %.1f%% (paper: 83.2%% vs 78.2%%)\n",
		d.Utilization*100, t.Utilization*100)
	fmt.Printf("requests rerun due to terminations: termination=%d deflation=%d\n",
		t.Functions["binaryalert"].Requeued+t.Functions["mobilenet-v2"].Requeued,
		d.Functions["binaryalert"].Requeued+d.Functions["mobilenet-v2"].Requeued)
}
