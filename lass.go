// Package lass is the public API of the LaSS reproduction: a platform for
// running latency-sensitive serverless computations on resource-constrained
// edge clusters, after Wang, Ali-Eldin and Shenoy, "LaSS: Running Latency
// Sensitive Serverless Computations at the Edge" (HPDC 2021).
//
// The package re-exports the library's stable surface:
//
//   - queueing-model capacity planning (RequiredContainers and friends,
//     paper §3): given an arrival rate, a service rate, and an SLO, how
//     many containers does a function need?
//   - simulated platform construction (NewSimulation, §5-§6): a complete
//     edge deployment — cluster, data path, controller — driven by a
//     deterministic discrete-event engine;
//   - the function catalog of the paper's evaluation (Catalog, Table 1);
//   - workload generators (§6.1) and Azure-schema trace tooling (§6.7);
//   - multi-cluster edge–cloud federation (NewFederation): N edge sites
//     on an explicit latency topology (NewFederationTopology, RingTopology,
//     StarTopology) plus a cloud backend with warm-pool cold starts and
//     cost accounting, with per-request dynamic offload after Das et al.'s
//     edge-cloud task placement (2020) through a pluggable placement API
//     (Placer, PlacementContext, RegisterPlacer): six built-in policies
//     and user-defined ones, selectable by name. The federation-wide
//     fair-share allocator's coordinator is an elected, failure-tolerant
//     role: CoordinatorRTTCentroid places it at the topology's RTT
//     centroid, OutageWindow schedules coordinator outages, and leased
//     grants fall back to local enforcement when the coordinator goes
//     dark.
//   - seeded chaos engineering (NewChaosEngine, FederationConfig.Faults):
//     Gilbert-Elliott coordinator/site/link faults, partial partitions
//     with asymmetric lease expiry, and cascading failure groups — plus
//     declarative scenario files (LoadScenario) bundling fleet, topology,
//     workload, faults, and assertions into one runnable document.
//
// # Quick start
//
//	spec := lass.MicroBenchmark(100 * time.Millisecond)
//	wl, _ := lass.StaticWorkload(30) // 30 req/s Poisson
//	p, _ := lass.NewSimulation(lass.SimulationConfig{
//		Cluster:   lass.PaperCluster(),
//		Seed:      1,
//		Functions: []lass.FunctionConfig{{Spec: spec, Workload: wl}},
//	})
//	res, _ := p.Run(10 * time.Minute)
//	fmt.Println(res.Functions[spec.Name].Waits.Quantile(0.95))
//
// See examples/ for complete programs and cmd/lass-bench for the
// harnesses that regenerate every table and figure of the paper.
package lass

import (
	"time"

	"lass/internal/allocation"
	"lass/internal/chaos"
	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/core"
	"lass/internal/federation"
	"lass/internal/functions"
	"lass/internal/queuing"
	"lass/internal/scenario"
	"lass/internal/workload"
)

// SLO is a latency service-level objective: a percentile of requests must
// meet the deadline (paper §2.3).
type SLO = queuing.SLO

// Spec describes a serverless function as the platform sees it: container
// size, service-time behaviour, deflation slack (paper §6.1, Table 1).
type Spec = functions.Spec

// ClusterConfig sizes the edge cluster.
type ClusterConfig = cluster.Config

// ControllerConfig tunes the LaSS control plane (§3-§5).
type ControllerConfig = controller.Config

// ReclamationPolicy selects termination- or deflation-based reclamation
// (§4.2).
type ReclamationPolicy = controller.ReclamationPolicy

// Reclamation policies.
const (
	Termination = controller.Termination
	Deflation   = controller.Deflation
)

// FunctionConfig registers a function and its workload with a simulation.
type FunctionConfig = core.FunctionConfig

// SimulationConfig describes a complete simulated deployment.
type SimulationConfig = core.Config

// Simulation is an assembled platform; Run drives it and returns results.
type Simulation = core.Platform

// Result is the outcome of a simulation run.
type Result = core.Result

// FunctionResult is one function's measurements.
type FunctionResult = core.FunctionResult

// Workload is a piecewise-constant arrival-rate schedule (§6.1).
type Workload = workload.Schedule

// WorkloadStep is one segment of a discrete-change schedule.
type WorkloadStep = workload.Step

// NewSimulation assembles a simulated LaSS deployment.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	return core.New(cfg)
}

// PaperCluster returns the 3-node, 4-core testbed of §6.1.
func PaperCluster() ClusterConfig { return cluster.PaperCluster() }

// DefaultController returns the paper-faithful controller configuration
// (5s epochs, dual 10s/2min windows, τ=30% deflation, deflation policy).
func DefaultController() ControllerConfig { return controller.Default() }

// Catalog returns the paper's function catalog (Table 1).
func Catalog() []Spec { return functions.Catalog() }

// FunctionByName returns a catalog entry.
func FunctionByName(name string) (Spec, error) { return functions.ByName(name) }

// MicroBenchmark returns the configurable micro-benchmark function at the
// given mean service time (§6.1).
func MicroBenchmark(mean time.Duration) Spec { return functions.MicroBenchmark(mean) }

// StaticWorkload returns a constant-rate Poisson workload.
func StaticWorkload(rate float64) (*Workload, error) { return workload.NewStatic(rate) }

// StepWorkload returns a discrete-change workload from explicit steps.
func StepWorkload(steps []WorkloadStep) (*Workload, error) { return workload.NewSteps(steps) }

// TraceWorkload converts per-minute invocation counts (the Azure trace
// format) into a workload.
func TraceWorkload(perMinuteCounts []float64) (*Workload, error) {
	return workload.FromPerMinuteCounts(perMinuteCounts)
}

// FederationConfig describes a multi-cluster edge–cloud deployment: N
// edge sites (each a complete SimulationConfig) plus an elastic cloud
// backend and a per-request offload policy.
type FederationConfig = federation.Config

// Federation is an assembled multi-cluster deployment; Run drives every
// site on one shared deterministic engine.
type Federation = federation.Federation

// FederationResult is the outcome of a federated run.
type FederationResult = federation.Result

// FederationSiteResult is one edge site's view of a federated run.
type FederationSiteResult = federation.SiteResult

// Placer is the pluggable placement policy of the federation: every
// ingress request is handed to the configured Placer as a
// PlacementContext, and the returned Decision serves it locally, at a peer
// site, in the cloud, or rejects it (§3.4 admission). Implement Name and
// Place, register with RegisterPlacer, and the policy becomes selectable
// by name everywhere a built-in is — FederationConfig.Placer, the
// experiment sweeps, and lass-sim -policy — without touching the
// federation internals.
type Placer = federation.Placer

// PlacementContext exposes everything the federation knows about one
// arriving request to the placement policy. Request state: Function /
// Spec (the Table 1 catalog entry), ResponseSLO (the end-to-end deadline,
// network included), Origin (the ingress site index), and Sheddable
// (whether §3.4 offload-aware admission applies — a sheddable request is
// never queued at its overloaded origin). Per-candidate signals, indexed
// by site: PredictResponse (the §3.1 queueing model's backlog-drain
// estimate plus both network legs), RTT (the topology's one-way latency
// matrix), Overloaded / Accepts (the epoch-level overload and absorption
// signals), Headroom (controller capacity headroom, §3.3), QueueLength /
// Backlog / Containers / IdleContainers / ServiceCapacity (live pool
// state), and GrantedCPU / DesiredCPU / GloballyAllocated (the
// federation-wide §4.1 fair-share allocator's grants versus the model's
// desires, including granted-but-cold pre-provisioned pools). Cloud
// state: PredictCloud (response including cold start and the queue at the
// concurrency cap), CloudAdmits (throttle headroom), and
// CloudCostPerRequest (the invocation + GB-second price). SelectPeer and
// PeersByRTT run the configured peer-selection strategy and the
// deterministic RTT-ordered scan.
type PlacementContext = federation.PlacementContext

// PlacementDecision is a Placer's verdict for one request.
type PlacementDecision = federation.Decision

// PlaceLocal serves the request at its ingress site.
func PlaceLocal() PlacementDecision { return federation.Local() }

// PlaceAtSite offloads the request to the edge site with the given index.
func PlaceAtSite(site int) PlacementDecision { return federation.ToSite(site) }

// PlaceInCloud offloads the request to the cloud backend.
func PlaceInCloud() PlacementDecision { return federation.ToCloud() }

// PlaceReject drops the request at admission (§3.4); it stays an SLO
// violation at its origin.
func PlaceReject() PlacementDecision { return federation.Reject() }

// RegisterPlacer adds a custom placement policy to the name-keyed
// registry. Registered placers are selectable via PlacerByName,
// FederationConfig.Placer, and every federation sweep (one row set per
// registered policy, lass-sim -policy included).
func RegisterPlacer(p Placer) error { return federation.RegisterPlacer(p) }

// PlacerByName returns the registered placement policy with the given
// (case-insensitive) name: the built-ins "never", "cloud-only",
// "nearest-peer", "model-driven", "grant-aware", "cost-bounded", or any
// custom policy added with RegisterPlacer.
func PlacerByName(name string) (Placer, error) { return federation.PlacerByName(name) }

// PlacerNames returns every registered placement policy name in
// registration order (built-ins first, in sweep order).
func PlacerNames() []string { return federation.PlacerNames() }

// OffloadPolicy selects how each site's ingress places requests: serve
// locally, offload to a peer edge site, or fall back to the cloud.
//
// Deprecated: the enum is a thin shim over the placer registry — each
// value resolves to the built-in Placer of the same name. Use
// FederationConfig.Placer / PlacerByName, which also reach the policies
// the enum cannot name (grant-aware, cost-bounded, custom placers).
type OffloadPolicy = federation.Policy

// Offload policies.
const (
	// OffloadNever serves everything at its ingress site (the
	// single-cluster baseline).
	OffloadNever = federation.Never
	// OffloadCloudOnly sheds to the cloud when the ingress site is
	// overloaded.
	OffloadCloudOnly = federation.CloudOnly
	// OffloadNearestPeer sheds to the closest peer with headroom, then
	// the cloud.
	OffloadNearestPeer = federation.NearestPeer
	// OffloadModelDriven offloads wherever the predicted response
	// (backlog drain plus RTT) is best once the local prediction misses
	// the SLO.
	OffloadModelDriven = federation.ModelDriven
)

// FederationTopology is an explicit, validated one-way inter-site latency
// matrix (optionally asymmetric; zero diagonal, non-negative entries).
type FederationTopology = federation.Topology

// NewFederationTopology wraps a measured latency matrix after validation.
func NewFederationTopology(rtt [][]time.Duration) (*FederationTopology, error) {
	return federation.NewTopology(rtt)
}

// RingTopology returns the ring topology the federation uses by default:
// sites at ring distance d are d×peerRTT apart one way.
func RingTopology(n int, peerRTT time.Duration) (*FederationTopology, error) {
	return federation.Ring(n, peerRTT)
}

// StarTopology returns a hub-and-spoke topology with site 0 as hub.
func StarTopology(n int, spokeRTT time.Duration) (*FederationTopology, error) {
	return federation.Star(n, spokeRTT)
}

// NewFederation assembles a simulated multi-cluster edge–cloud deployment.
func NewFederation(cfg FederationConfig) (*Federation, error) {
	return federation.New(cfg)
}

// ParseOffloadPolicy returns the offload policy named by s
// ("never", "cloud-only", "nearest-peer", "model-driven").
//
// Deprecated: ParseOffloadPolicy only knows the four legacy enum values;
// use PlacerByName, which resolves every registered policy.
func ParseOffloadPolicy(s string) (OffloadPolicy, error) {
	return federation.ParsePolicy(s)
}

// CoordinatorElection selects how the global allocator's coordinator site
// is chosen under FederationConfig.GlobalFairShare: pinned at
// FederationConfig.Coordinator, or elected at the topology's weighted
// round-trip centroid.
type CoordinatorElection = federation.CoordinatorElection

// Coordinator election modes.
const (
	// CoordinatorFixed pins the coordinator at
	// FederationConfig.Coordinator (default site 0) — the historical
	// behaviour, and the zero value.
	CoordinatorFixed = federation.Fixed
	// CoordinatorRTTCentroid elects the site minimizing the weighted
	// round-trip sum over the topology matrix
	// (FederationTopology.RTTCentroid), re-elected whenever the
	// federation is reassembled with different membership.
	CoordinatorRTTCentroid = federation.RTTCentroid
)

// ParseCoordinatorElection returns the coordinator election mode named by
// s ("fixed", "centroid").
func ParseCoordinatorElection(s string) (CoordinatorElection, error) {
	return federation.ParseCoordinatorElection(s)
}

// OutageWindow is a half-open interval [Start, End) of simulated time;
// FederationConfig.CoordinatorOutages uses it to schedule windows during
// which the coordinator is dark — allocation epochs firing inside one
// produce no grants (counted in FederationResult.MissedAllocEpochs), and
// sites whose grant lease (FederationConfig.GrantLease, default
// 2×AllocEpoch) lapses without renewal fall back to local enforcement.
type OutageWindow = federation.Window

// PeerSelection selects how a shedding site picks among candidate peers.
type PeerSelection = federation.PeerSelection

// Peer selections.
const (
	// PeerNearestFirst scans peers in ascending-RTT order (the
	// historical behaviour).
	PeerNearestFirst = federation.NearestFirst
	// PeerPowerOfTwoChoices samples two candidates and keeps the one
	// with more controller headroom.
	PeerPowerOfTwoChoices = federation.PowerOfTwoChoices
)

// ParsePeerSelection returns the peer selection named by s
// ("nearest", "p2c").
func ParsePeerSelection(s string) (PeerSelection, error) {
	return federation.ParsePeerSelection(s)
}

// ChaosConfig declares a chaos engine: the number of sites its fault
// targets index into, the master seed every stochastic failure process
// forks from, and the fault list. Same config, same realization —
// failure schedules are a pure function of (Seed, fault declaration
// order), independent of query order.
type ChaosConfig = chaos.Config

// ChaosFault is one failure declaration: a coordinator, site, link, or
// cascading-group fault driven by static windows or a seeded
// Gilbert-Elliott up/down process.
type ChaosFault = chaos.Fault

// ChaosFaultKind discriminates what a ChaosFault darkens.
type ChaosFaultKind = chaos.FaultKind

// Fault kinds.
const (
	// ChaosFaultCoordinator darkens the coordinator role (allocation
	// epochs produce no grants) without touching any site's data plane.
	ChaosFaultCoordinator = chaos.FaultCoordinator
	// ChaosFaultSite darkens one site entirely: peers cannot reach it
	// and it loses its own peer and cloud uplinks.
	ChaosFaultSite = chaos.FaultSite
	// ChaosFaultLink darkens one directed site-to-site link (set
	// Bidirectional for both legs) — the partial-partition primitive.
	ChaosFaultLink = chaos.FaultLink
	// ChaosFaultGroup darkens a set of sites with a per-member cascade
	// lag — correlated failures that ripple instead of landing at once.
	ChaosFaultGroup = chaos.FaultGroup
)

// GilbertElliott parameterizes a two-state up/down failure process with
// exponentially distributed holding times.
type GilbertElliott = chaos.GilbertElliott

// ChaosEngine realizes a ChaosConfig into queryable fault timelines; it
// implements FaultView and plugs into FederationConfig.Faults.
type ChaosEngine = chaos.Engine

// NewChaosEngine validates the config and builds the seeded engine.
func NewChaosEngine(cfg ChaosConfig) (*ChaosEngine, error) {
	return chaos.New(cfg)
}

// FaultView is what the federation consults about failures: whether the
// coordinator role, a site, or a directed link is dark at an instant.
type FaultView = federation.FaultView

// UnionFaults composes fault views; a target is dark when any view says
// so. Nil views are skipped.
func UnionFaults(views ...FaultView) FaultView {
	return federation.UnionFaults(views...)
}

// Scenario is a declarative experiment file — fleet, topology, workload,
// chaos faults, and result assertions — loadable from YAML-subset text
// and buildable into a FederationConfig. See scenarios/ and the README's
// "Chaos & scenario files" section.
type Scenario = scenario.Scenario

// LoadScenario reads and validates a scenario file.
func LoadScenario(path string) (*Scenario, error) {
	return scenario.Load(path)
}

// ParseScenario parses and validates scenario text.
func ParseScenario(data []byte) (*Scenario, error) {
	return scenario.Parse(data)
}

// GlobalSiteDemand is one edge site's demand report to the federation-wide
// fair-share allocator: its capacity, root-level weight, and per-function
// demands.
type GlobalSiteDemand = allocation.SiteDemand

// GlobalFunctionDemand is one function's demand at one site.
type GlobalFunctionDemand = allocation.FunctionDemand

// GlobalAllocation is one federation-wide allocation epoch's outcome:
// per-(site, function) entitlements and enforceable grants plus the
// stranded-capacity and cross-site drift measurements.
type GlobalAllocation = allocation.Result

// GlobalGrant is the allocator's decision for one function at one site.
type GlobalGrant = allocation.Grant

// GlobalAllocate runs one federation-wide §4.1 fair-share epoch: capped
// water-filling over the sites' total edge capacity on the
// site → user → function tree, clamped to each site's physical capacity,
// with displaced entitlement spread to sites that still have idle
// capacity. NewFederation runs this automatically every allocation epoch
// when FederationConfig.GlobalFairShare is set; the direct form serves
// custom schedulers and analysis.
func GlobalAllocate(sites []GlobalSiteDemand) (*GlobalAllocation, error) {
	return allocation.Allocate(sites, true)
}

// QuotaHierarchy is the federation's region → metro → site capacity tree
// (arbitrary depth): interior groups carry weights, leaves list site
// names, and each level's deserved quota cascades down by weight share.
// Assign it to FederationConfig.Hierarchy (with optional
// FederationConfig.Reclaim) or run it directly through
// GlobalAllocateHierarchical. See the README's "Hierarchical federations"
// section.
type QuotaHierarchy = allocation.Hierarchy

// QuotaGroup is one node of a QuotaHierarchy: a named, weighted group
// holding either child groups or leaf site names.
type QuotaGroup = allocation.Group

// ReclaimDirective is one landed cross-site reclaim commit: CPU moved
// from an over-quota (borrowed) function grant to a deserved-starved
// peer's function at the same site.
type ReclaimDirective = allocation.Reclaim

// HierarchyRTTClasses are the per-level one-way latencies a hierarchical
// topology derives from the quota tree (intra-metro / intra-region /
// cross-region; zero selects 2ms / 10ms / 40ms).
type HierarchyRTTClasses = federation.RTTClasses

// HierarchicalTopology derives the inter-site latency matrix from a quota
// hierarchy: each ordered site pair pays the class of the lowest tree
// level it shares.
func HierarchicalTopology(sites []string, h *QuotaHierarchy, classes HierarchyRTTClasses) (*FederationTopology, error) {
	return federation.Hierarchical(sites, h.Levels(), classes)
}

// GlobalAllocateHierarchical runs one hierarchical federation-wide
// fair-share epoch: the deserved-quota cascade down the tree, capped
// water-filling with over-quota borrowing, and — when reclaim is set —
// cross-site reclamation of borrowed capacity for deserved-starved
// functions (Result.Reclaims). A depth-1 hierarchy reproduces
// GlobalAllocate bit for bit.
func GlobalAllocateHierarchical(h *QuotaHierarchy, sites []GlobalSiteDemand, reclaim bool) (*GlobalAllocation, error) {
	return allocation.AllocateHierarchical(h, sites, true, reclaim)
}

// ControllerDemand is one function's demand estimate as a site controller
// reports it to an external allocator (Controller.Demands).
type ControllerDemand = controller.FunctionDemand

// RequiredContainers runs the paper's Algorithm 1: the number of
// containers needed to serve arrival rate lambda with per-container
// service rate mu while meeting the SLO (§3.1).
func RequiredContainers(lambda, mu float64, slo SLO) (int, error) {
	return queuing.MinimalContainers(lambda, mu, slo)
}

// RequiredContainersHeterogeneous sizes a pool that already contains
// containers with the given (possibly deflated) service rates: it returns
// how many standard containers at newRate must be added (§3.2).
func RequiredContainersHeterogeneous(lambda float64, existingRates []float64, newRate float64, slo SLO) (int, error) {
	return queuing.AdditionalHetContainers(lambda, existingRates, newRate, slo)
}

// DefaultSLO is the evaluation's default objective: 95% of requests start
// service within 100 ms (§6.1).
func DefaultSLO() SLO {
	return SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
}
