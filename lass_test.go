package lass_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"lass"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/experiments"
	"lass/internal/federation"
)

func TestPublicAPISimulation(t *testing.T) {
	spec := lass.MicroBenchmark(100 * time.Millisecond)
	wl, err := lass.StaticWorkload(20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lass.NewSimulation(lass.SimulationConfig{
		Cluster:   lass.PaperCluster(),
		Seed:      1,
		Functions: []lass.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Functions[spec.Name]
	if fr.Completed == 0 {
		t.Fatal("nothing completed through the public API")
	}
	if fr.SLO.Attainment() < 0.8 {
		t.Errorf("attainment %.3f", fr.SLO.Attainment())
	}
}

func TestPublicAPISolvers(t *testing.T) {
	c, err := lass.RequiredContainers(30, 10, lass.DefaultSLO())
	if err != nil {
		t.Fatal(err)
	}
	if c < 4 || c > 7 {
		t.Errorf("c=%d outside plausible range for lambda=30 mu=10", c)
	}
	add, err := lass.RequiredContainersHeterogeneous(30, []float64{7, 7}, 10, lass.DefaultSLO())
	if err != nil {
		t.Fatal(err)
	}
	if add < 1 {
		t.Errorf("het solver added %d containers to an undersized pool", add)
	}
}

func TestPublicAPICatalogAndTraces(t *testing.T) {
	if got := len(lass.Catalog()); got != 7 {
		t.Errorf("catalog size %d", got)
	}
	if _, err := lass.FunctionByName("squeezenet"); err != nil {
		t.Error(err)
	}
	row, err := lass.SynthesizeTrace(5, lass.TraceSporadic, 18, 1440)
	if err != nil {
		t.Fatal(err)
	}
	start := lass.FindActiveTraceWindow(row.Counts, 60)
	window := row.Window(start, start+60)
	if len(window) != 60 {
		t.Fatalf("window length %d", len(window))
	}
	wl, err := lass.TraceWorkload(window)
	if err != nil {
		t.Fatal(err)
	}
	if wl.End() != time.Hour {
		t.Errorf("trace workload end %v", wl.End())
	}
}

//lass:wallclock exercises the re-exported real-time platform live.
func TestPublicAPIRealtime(t *testing.T) {
	p, err := lass.NewRealtime(lass.RealtimeConfig{
		Cluster: lass.PaperCluster(),
		Controller: controller.Config{
			EvalInterval:  100 * time.Millisecond,
			Windows:       controller.DualWindowConfig{Short: 2 * time.Second, Long: 10 * time.Second, BurstFactor: 2},
			MinContainers: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	spec := lass.MicroBenchmark(5 * time.Millisecond)
	spec.ColdStart = 10 * time.Millisecond
	handler := func(ctx context.Context, payload []byte) ([]byte, error) {
		if f := lass.HandlerCPUFraction(ctx); f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad cpu fraction %v", f)
		}
		return []byte("ok"), nil
	}
	if err := p.Register(spec, handler, lass.DefaultSLO()); err != nil {
		t.Fatal(err)
	}
	if err := p.Provision(spec.Name, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := p.Invoke(ctx, spec.Name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Errorf("out=%q", out)
	}
}

func TestPolicyConstantsWired(t *testing.T) {
	if lass.Termination == lass.Deflation {
		t.Error("policy constants collide")
	}
	ctl := lass.DefaultController()
	if ctl.Policy != lass.Deflation {
		t.Errorf("default policy %v", ctl.Policy)
	}
	_ = cluster.Config(lass.PaperCluster()) // type identity sanity
}

// ExampleRequiredContainers demonstrates sizing a function with the
// paper's queueing model.
func ExampleRequiredContainers() {
	slo := lass.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	c, _ := lass.RequiredContainers(30, 10, slo)
	fmt.Println(c)
	// Output: 5
}

// TestPublicAPIGlobalAllocation exercises the federation-wide fair-share
// surface: the direct allocator call and the federation config knobs.
func TestPublicAPIGlobalAllocation(t *testing.T) {
	res, err := lass.GlobalAllocate([]lass.GlobalSiteDemand{
		{Site: "hot", CapacityCPU: 2000, Functions: []lass.GlobalFunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 5000},
		}},
		{Site: "cold", CapacityCPU: 4000, Functions: []lass.GlobalFunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 500},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var hotGrant, coldGrant int64
	for _, g := range res.Grants {
		switch g.Site {
		case "hot":
			hotGrant = g.GrantedCPU
		case "cold":
			coldGrant = g.GrantedCPU
		}
	}
	if hotGrant != 2000 {
		t.Errorf("hot granted %d want its full 2000 capacity", hotGrant)
	}
	if coldGrant <= 500 {
		t.Errorf("cold granted %d want > its 500 desire (spread)", coldGrant)
	}
	if _, err := lass.ParsePeerSelection("p2c"); err != nil {
		t.Error(err)
	}
	if lass.PeerNearestFirst.String() != "nearest" || lass.PeerPowerOfTwoChoices.String() != "p2c" {
		t.Error("peer selection constants misnamed")
	}
}

// TestPublicAPICoordinatorElection exercises the coordinator surface: the
// election constants and parser, centroid election on a custom topology,
// outage windows, and the failure counters on the run result.
func TestPublicAPICoordinatorElection(t *testing.T) {
	if el, err := lass.ParseCoordinatorElection("centroid"); err != nil || el != lass.CoordinatorRTTCentroid {
		t.Errorf("ParseCoordinatorElection(centroid) = %v, %v", el, err)
	}
	if lass.CoordinatorFixed.String() != "fixed" || lass.CoordinatorRTTCentroid.String() != "centroid" {
		t.Error("coordinator election constants misnamed")
	}
	ms := time.Millisecond
	topo, err := lass.NewFederationTopology([][]time.Duration{
		{0, 20 * ms, 22 * ms},
		{18 * ms, 0, 2 * ms},
		{21 * ms, 3 * ms, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hub := topo.RTTCentroid(nil); hub != 1 {
		t.Fatalf("RTTCentroid = %d, want 1", hub)
	}
	spec, err := lass.FunctionByName("squeezenet")
	if err != nil {
		t.Fatal(err)
	}
	site := func(rate float64, seed uint64) lass.SimulationConfig {
		wl, err := lass.StaticWorkload(rate)
		if err != nil {
			t.Fatal(err)
		}
		return lass.SimulationConfig{
			Cluster:    lass.PaperCluster(),
			Controller: controller.Config{MinContainers: 1},
			Seed:       seed,
			Functions:  []lass.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
		}
	}
	fed, err := lass.NewFederation(lass.FederationConfig{
		Sites:               []lass.SimulationConfig{site(30, 1), site(5, 2), site(5, 3)},
		Policy:              lass.OffloadNever,
		Topology:            topo,
		GlobalFairShare:     true,
		CoordinatorElection: lass.CoordinatorRTTCentroid,
		CoordinatorOutages:  []lass.OutageWindow{{Start: 15 * time.Second, End: time.Hour}},
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Coordinator() != 1 || res.Coordinator != 1 {
		t.Errorf("centroid coordinator = %d/%d, want 1", fed.Coordinator(), res.Coordinator)
	}
	if res.MissedAllocEpochs == 0 {
		t.Error("run-long outage missed no allocation epochs")
	}
	if res.GrantLeaseExpirations == 0 {
		t.Error("outage longer than the default lease expired no grants")
	}
}

// TestFederationBaselineColumns guards the committed BENCH_federation.json
// against silently going stale: it must carry every column the federation
// sweep produces, an aggregate row for every built-in placement policy,
// and the coordinator sweep's election/outage/lease scenario rows
// (regenerate with
// go run ./cmd/lass-sim -federation -fed-bench -quick -seed 1 -json BENCH_federation.json).
// BenchmarkFederationSweep asserts the same invariants for the CI bench
// smoke step, which runs no plain tests.
func TestFederationBaselineColumns(t *testing.T) {
	raw, err := os.ReadFile("BENCH_federation.json")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := experiments.Run("federation", experiments.Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	missing, err := experiments.MissingBaselineColumns(raw, tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range missing {
		t.Errorf("BENCH_federation.json baseline missing column %q — regenerate it", h)
	}
	// One aggregate row per built-in policy: a placer added to the
	// registry without regenerating the baseline would otherwise drift
	// unguarded.
	stale, err := experiments.MissingBaselinePolicies(raw, federation.BuiltinPlacerNames)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range stale {
		t.Errorf("BENCH_federation.json baseline missing policy %q — regenerate it", p)
	}
	// The coordinator sweep's rows (centroid election, outage, lease
	// fallback, frozen grants) must be in the baseline too: a baseline
	// regenerated from the plain federation sweep alone fails here.
	scenarios, err := experiments.MissingCoordinatorScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scenarios {
		t.Errorf("BENCH_federation.json baseline missing coordinator scenario %q — regenerate it with -fed-bench", s)
	}
	// Same for the nested control-plane sub-table: a baseline regenerated
	// before the control-bench existed (or with it stripped) fails here.
	controls, err := experiments.MissingControlScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range controls {
		t.Errorf("BENCH_federation.json baseline missing control-bench scenario %q — regenerate it with -fed-bench", s)
	}
	// And the nested chaos sub-table: every election x grant-lease variant
	// of the seeded chaos sweep must have a row.
	chaos, err := experiments.MissingChaosScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range chaos {
		t.Errorf("BENCH_federation.json baseline missing chaos-sweep scenario %q — regenerate it with -fed-bench", s)
	}
	// And the nested hierarchy sub-table: the quota-structure sweep's
	// flat / borrow / reclaim mode rows must have survived regeneration.
	hier, err := experiments.MissingHierarchyScenarios(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range hier {
		t.Errorf("BENCH_federation.json baseline missing hierarchy-sweep mode %q — regenerate it with -fed-bench", s)
	}
}

// slowPeerPlacer is the README's example custom policy: offload overload
// to whichever peer currently has the most idle containers, cloud never.
type slowPeerPlacer struct{}

func (slowPeerPlacer) Name() string { return "most-idle-peer" }

func (slowPeerPlacer) Place(ctx *lass.PlacementContext) lass.PlacementDecision {
	if !ctx.Overloaded(ctx.Origin()) {
		return lass.PlaceLocal()
	}
	best, idle := -1, 0
	for _, p := range ctx.PeersByRTT() {
		if n := ctx.IdleContainers(p); n > idle {
			best, idle = p, n
		}
	}
	if best >= 0 {
		return lass.PlaceAtSite(best)
	}
	return lass.PlaceLocal()
}

// TestPublicAPICustomPlacer registers a placement policy through the
// public surface and selects it by name end to end — federation config
// resolution, the experiment registry (the path behind lass-sim
// -policy <name>), and the run's result labelling — without touching
// internal/federation.
func TestPublicAPICustomPlacer(t *testing.T) {
	// Tolerate re-registration: the registry is process-global, so a
	// second in-process run (go test -count=N) already has the placer.
	if err := lass.RegisterPlacer(slowPeerPlacer{}); err != nil &&
		!strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	found := false
	for _, name := range lass.PlacerNames() {
		if name == "most-idle-peer" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered placer missing from PlacerNames: %v", lass.PlacerNames())
	}
	placer, err := lass.PlacerByName("most-idle-peer")
	if err != nil {
		t.Fatal(err)
	}

	spec, err := lass.FunctionByName("squeezenet")
	if err != nil {
		t.Fatal(err)
	}
	site := func(rate float64, seed uint64, nodes int) lass.SimulationConfig {
		wl, err := lass.StaticWorkload(rate)
		if err != nil {
			t.Fatal(err)
		}
		return lass.SimulationConfig{
			Cluster:    lass.ClusterConfig{Nodes: nodes, CPUPerNode: 1000, MemPerNode: 2048},
			Controller: controller.Config{MinContainers: 1},
			Seed:       seed,
			Functions:  []lass.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
		}
	}
	fed, err := lass.NewFederation(lass.FederationConfig{
		Sites:  []lass.SimulationConfig{site(60, 1, 1), site(2, 2, 8), site(2, 3, 8)},
		Placer: placer,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Placer != "most-idle-peer" {
		t.Errorf("result labelled %q, want most-idle-peer", res.Placer)
	}
	if res.Sites[0].OffloadedPeer == 0 {
		t.Errorf("custom placer shed nothing from the overloaded site: %+v", res.Sites[0])
	}
	if res.Sites[0].OffloadedCloud != 0 {
		t.Errorf("most-idle-peer used the cloud: %+v", res.Sites[0])
	}

	// The experiment registry resolves the same name — the exact path
	// lass-sim -federation -policy most-idle-peer takes.
	tab, err := experiments.Run("federation", experiments.Options{
		Seed: 1, Quick: true, Fed: experiments.FedOptions{Policy: "most-idle-peer"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] != "most-idle-peer" {
			t.Fatalf("sweep row policy %q, want most-idle-peer only", row[0])
		}
	}
}
