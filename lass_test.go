package lass_test

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"lass"

	"lass/internal/cluster"
	"lass/internal/controller"
	"lass/internal/experiments"
)

func TestPublicAPISimulation(t *testing.T) {
	spec := lass.MicroBenchmark(100 * time.Millisecond)
	wl, err := lass.StaticWorkload(20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lass.NewSimulation(lass.SimulationConfig{
		Cluster:   lass.PaperCluster(),
		Seed:      1,
		Functions: []lass.FunctionConfig{{Spec: spec, Workload: wl, Prewarm: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Functions[spec.Name]
	if fr.Completed == 0 {
		t.Fatal("nothing completed through the public API")
	}
	if fr.SLO.Attainment() < 0.8 {
		t.Errorf("attainment %.3f", fr.SLO.Attainment())
	}
}

func TestPublicAPISolvers(t *testing.T) {
	c, err := lass.RequiredContainers(30, 10, lass.DefaultSLO())
	if err != nil {
		t.Fatal(err)
	}
	if c < 4 || c > 7 {
		t.Errorf("c=%d outside plausible range for lambda=30 mu=10", c)
	}
	add, err := lass.RequiredContainersHeterogeneous(30, []float64{7, 7}, 10, lass.DefaultSLO())
	if err != nil {
		t.Fatal(err)
	}
	if add < 1 {
		t.Errorf("het solver added %d containers to an undersized pool", add)
	}
}

func TestPublicAPICatalogAndTraces(t *testing.T) {
	if got := len(lass.Catalog()); got != 7 {
		t.Errorf("catalog size %d", got)
	}
	if _, err := lass.FunctionByName("squeezenet"); err != nil {
		t.Error(err)
	}
	row, err := lass.SynthesizeTrace(5, lass.TraceSporadic, 18, 1440)
	if err != nil {
		t.Fatal(err)
	}
	start := lass.FindActiveTraceWindow(row.Counts, 60)
	window := row.Window(start, start+60)
	if len(window) != 60 {
		t.Fatalf("window length %d", len(window))
	}
	wl, err := lass.TraceWorkload(window)
	if err != nil {
		t.Fatal(err)
	}
	if wl.End() != time.Hour {
		t.Errorf("trace workload end %v", wl.End())
	}
}

func TestPublicAPIRealtime(t *testing.T) {
	p, err := lass.NewRealtime(lass.RealtimeConfig{
		Cluster: lass.PaperCluster(),
		Controller: controller.Config{
			EvalInterval:  100 * time.Millisecond,
			Windows:       controller.DualWindowConfig{Short: 2 * time.Second, Long: 10 * time.Second, BurstFactor: 2},
			MinContainers: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	spec := lass.MicroBenchmark(5 * time.Millisecond)
	spec.ColdStart = 10 * time.Millisecond
	handler := func(ctx context.Context, payload []byte) ([]byte, error) {
		if f := lass.HandlerCPUFraction(ctx); f <= 0 || f > 1 {
			return nil, fmt.Errorf("bad cpu fraction %v", f)
		}
		return []byte("ok"), nil
	}
	if err := p.Register(spec, handler, lass.DefaultSLO()); err != nil {
		t.Fatal(err)
	}
	if err := p.Provision(spec.Name, 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := p.Invoke(ctx, spec.Name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Errorf("out=%q", out)
	}
}

func TestPolicyConstantsWired(t *testing.T) {
	if lass.Termination == lass.Deflation {
		t.Error("policy constants collide")
	}
	ctl := lass.DefaultController()
	if ctl.Policy != lass.Deflation {
		t.Errorf("default policy %v", ctl.Policy)
	}
	_ = cluster.Config(lass.PaperCluster()) // type identity sanity
}

// ExampleRequiredContainers demonstrates sizing a function with the
// paper's queueing model.
func ExampleRequiredContainers() {
	slo := lass.SLO{Deadline: 100 * time.Millisecond, Percentile: 0.95, WaitingOnly: true}
	c, _ := lass.RequiredContainers(30, 10, slo)
	fmt.Println(c)
	// Output: 5
}

// TestPublicAPIGlobalAllocation exercises the federation-wide fair-share
// surface: the direct allocator call and the federation config knobs.
func TestPublicAPIGlobalAllocation(t *testing.T) {
	res, err := lass.GlobalAllocate([]lass.GlobalSiteDemand{
		{Site: "hot", CapacityCPU: 2000, Functions: []lass.GlobalFunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 5000},
		}},
		{Site: "cold", CapacityCPU: 4000, Functions: []lass.GlobalFunctionDemand{
			{Name: "f", Weight: 1, DesiredCPU: 500},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var hotGrant, coldGrant int64
	for _, g := range res.Grants {
		switch g.Site {
		case "hot":
			hotGrant = g.GrantedCPU
		case "cold":
			coldGrant = g.GrantedCPU
		}
	}
	if hotGrant != 2000 {
		t.Errorf("hot granted %d want its full 2000 capacity", hotGrant)
	}
	if coldGrant <= 500 {
		t.Errorf("cold granted %d want > its 500 desire (spread)", coldGrant)
	}
	if _, err := lass.ParsePeerSelection("p2c"); err != nil {
		t.Error(err)
	}
	if lass.PeerNearestFirst.String() != "nearest" || lass.PeerPowerOfTwoChoices.String() != "p2c" {
		t.Error("peer selection constants misnamed")
	}
}

// TestFederationBaselineColumns guards the committed BENCH_federation.json
// against silently going stale: it must carry every column the federation
// sweep produces (regenerate with
// go run ./cmd/lass-sim -federation -quick -seed 1 -json BENCH_federation.json).
// BenchmarkFederationSweep asserts the same invariant for the CI bench
// smoke step, which runs no plain tests.
func TestFederationBaselineColumns(t *testing.T) {
	raw, err := os.ReadFile("BENCH_federation.json")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := experiments.Run("federation", experiments.Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	missing, err := experiments.MissingBaselineColumns(raw, tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range missing {
		t.Errorf("BENCH_federation.json baseline missing column %q — regenerate it", h)
	}
}
