module lass

go 1.24
